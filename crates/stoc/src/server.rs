//! The StoC server: a simple component that stores, retrieves and manages
//! variable-sized blocks (Section 6), plus the compaction-offload entry point
//! (Section 4.3).

use crate::client::{StocClient, StocDirectory};
use crate::compaction::execute_compaction;
use crate::medium::StorageMedium;
use crate::message::{StocRequest, StocResponse};
use bytes::Bytes;
use nova_common::rate::Counter;
use nova_common::{Error, NodeId, Result, StocFileId, StocId};
use nova_fabric::{Endpoint, Fabric, RegionId, RpcHandler, RpcServer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A pending single-block write: the file buffer region allocated at open
/// time, waiting for the client's one-sided write and the seal request.
#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    region: RegionId,
    size: u64,
}

/// A named in-memory StoC file backed by a registered region (Section 6.1).
#[derive(Debug, Clone, Copy)]
struct MemFileEntry {
    file: StocFileId,
    region: RegionId,
    size: u64,
}

/// The state of one storage component.
pub struct StocState {
    id: StocId,
    node: NodeId,
    endpoint: Endpoint,
    medium: Arc<dyn StorageMedium>,
    client: StocClient,
    next_seq: AtomicU32,
    pending_writes: Mutex<HashMap<StocFileId, PendingWrite>>,
    mem_files: Mutex<HashMap<String, MemFileEntry>>,
    persistent_logs: Mutex<HashMap<String, StocFileId>>,
    compactions_executed: Counter,
}

impl std::fmt::Debug for StocState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StocState")
            .field("id", &self.id)
            .field("node", &self.node)
            .finish()
    }
}

impl StocState {
    /// This StoC's id.
    pub fn id(&self) -> StocId {
        self.id
    }

    /// The node hosting this StoC.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The storage medium backing this StoC.
    pub fn medium(&self) -> &Arc<dyn StorageMedium> {
        &self.medium
    }

    /// Number of compaction jobs this StoC has executed on behalf of LTCs.
    pub fn compactions_executed(&self) -> u64 {
        self.compactions_executed.get()
    }

    fn allocate_file_id(&self) -> StocFileId {
        StocFileId::new(self.id, self.next_seq.fetch_add(1, Ordering::Relaxed))
    }

    fn open_file_for_write(&self, size: u64) -> Result<StocResponse> {
        let file = self.allocate_file_id();
        let region = self.endpoint.register_region(size.max(1) as usize);
        self.pending_writes
            .lock()
            .insert(file, PendingWrite { region, size });
        Ok(StocResponse::Opened {
            file,
            region: region.0,
        })
    }

    fn seal_file(&self, file: StocFileId) -> Result<StocResponse> {
        let pending = self
            .pending_writes
            .lock()
            .remove(&file)
            .ok_or_else(|| Error::UnknownFile(format!("{file} has no pending write buffer")))?;
        let data = self
            .endpoint
            .local_region(pending.region)?
            .read(0, pending.size as usize)?;
        self.endpoint.deregister_region(pending.region);
        self.medium.append(file, &data)?;
        Ok(StocResponse::Sealed { size: pending.size })
    }

    fn read_block(
        &self,
        from: NodeId,
        file: StocFileId,
        offset: u64,
        len: u64,
        client_region: u64,
    ) -> Result<StocResponse> {
        let data = self.medium.read(file, offset, len as usize)?;
        // Push the block into the client's memory with a one-sided write
        // (Section 6.2): the client's CPU is not involved in the transfer.
        self.endpoint
            .rdma_write(from, RegionId(client_region), 0, &data, None)?;
        Ok(StocResponse::BlockRead)
    }

    fn open_mem_file(&self, name: &str, size: u64) -> Result<StocResponse> {
        let mut mem_files = self.mem_files.lock();
        if let Some(existing) = mem_files.get(name) {
            return Ok(StocResponse::MemFile {
                file: existing.file,
                region: existing.region.0,
                size: existing.size,
            });
        }
        let file = self.allocate_file_id();
        let region = self.endpoint.register_region(size.max(1) as usize);
        mem_files.insert(name.to_string(), MemFileEntry { file, region, size });
        Ok(StocResponse::MemFile {
            file,
            region: region.0,
            size,
        })
    }

    fn get_mem_file(&self, name: &str) -> Result<StocResponse> {
        let mem_files = self.mem_files.lock();
        let entry = mem_files
            .get(name)
            .ok_or_else(|| Error::UnknownFile(format!("in-memory file {name:?} does not exist")))?;
        Ok(StocResponse::MemFile {
            file: entry.file,
            region: entry.region.0,
            size: entry.size,
        })
    }

    fn list_mem_files(&self, prefix: &str) -> StocResponse {
        let mut names: Vec<String> = self
            .mem_files
            .lock()
            .keys()
            .filter(|n| n.starts_with(prefix))
            .cloned()
            .collect();
        names.sort();
        StocResponse::MemFiles { names }
    }

    fn delete_mem_file(&self, name: &str) -> Result<StocResponse> {
        let entry = self
            .mem_files
            .lock()
            .remove(name)
            .ok_or_else(|| Error::UnknownFile(format!("in-memory file {name:?} does not exist")))?;
        self.endpoint.deregister_region(entry.region);
        Ok(StocResponse::Ok)
    }

    fn append_log(&self, name: &str, data: &[u8]) -> Result<StocResponse> {
        let file = *self
            .persistent_logs
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| self.allocate_file_id());
        self.medium.append(file, data)?;
        Ok(StocResponse::Ok)
    }

    fn read_log(&self, name: &str) -> Result<StocResponse> {
        let file = self
            .persistent_logs
            .lock()
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownFile(format!("persistent log {name:?} does not exist")))?;
        let size = self.medium.file_size(file)?;
        let data = self.medium.read(file, 0, size as usize)?;
        Ok(StocResponse::LogContent { data: data.to_vec() })
    }

    fn list_logs(&self, prefix: &str) -> StocResponse {
        let mut names: Vec<String> = self
            .persistent_logs
            .lock()
            .keys()
            .filter(|n| n.starts_with(prefix))
            .cloned()
            .collect();
        names.sort();
        StocResponse::MemFiles { names }
    }

    fn delete_log(&self, name: &str) -> Result<StocResponse> {
        let file = self
            .persistent_logs
            .lock()
            .remove(name)
            .ok_or_else(|| Error::UnknownFile(format!("persistent log {name:?} does not exist")))?;
        let _ = self.medium.delete(file);
        Ok(StocResponse::Ok)
    }

    fn stats(&self) -> StocResponse {
        let stats = self.medium.stats();
        StocResponse::Stats {
            queue_depth: self.medium.queue_depth() as u64,
            bytes_written: stats.bytes_written,
            bytes_read: stats.bytes_read,
            disk_busy_nanos: stats.busy_nanos,
            num_files: self.medium.list_files().len() as u64,
        }
    }

    fn handle(&self, from: NodeId, request: StocRequest) -> Result<StocResponse> {
        match request {
            StocRequest::OpenFileForWrite { size } => self.open_file_for_write(size),
            StocRequest::SealFile { file } => self.seal_file(file),
            StocRequest::ReadBlock {
                file,
                offset,
                len,
                client_region,
            } => self.read_block(from, file, offset, len, client_region),
            StocRequest::DeleteFile { file } => {
                self.medium.delete(file)?;
                Ok(StocResponse::Ok)
            }
            StocRequest::FileSize { file } => Ok(StocResponse::Size {
                size: self.medium.file_size(file)?,
            }),
            StocRequest::QueueDepth => Ok(StocResponse::Depth {
                depth: self.medium.queue_depth() as u64,
            }),
            StocRequest::ListFiles => Ok(StocResponse::Files {
                files: self.medium.list_files(),
            }),
            StocRequest::OpenMemFile { name, size } => self.open_mem_file(&name, size),
            StocRequest::GetMemFile { name } => self.get_mem_file(&name),
            StocRequest::ListMemFiles { prefix } => Ok(self.list_mem_files(&prefix)),
            StocRequest::DeleteMemFile { name } => self.delete_mem_file(&name),
            StocRequest::Compaction(job) => {
                let outputs = execute_compaction(&self.client, &job)?;
                self.compactions_executed.incr();
                Ok(StocResponse::CompactionDone { outputs })
            }
            StocRequest::Stats => Ok(self.stats()),
            StocRequest::AppendLog { name, data } => self.append_log(&name, &data),
            StocRequest::ReadLog { name } => self.read_log(&name),
            StocRequest::ListLogs { prefix } => Ok(self.list_logs(&prefix)),
            StocRequest::DeleteLog { name } => self.delete_log(&name),
        }
    }
}

struct StocHandler {
    state: Arc<StocState>,
}

impl RpcHandler for StocHandler {
    fn handle_request(&self, from: NodeId, payload: Bytes) -> Result<Bytes> {
        let request = StocRequest::decode(&payload)?;
        let response = self.state.handle(from, request)?;
        Ok(Bytes::from(response.encode()))
    }
}

/// A running StoC: its state plus the RPC server threads.
pub struct StocServer {
    state: Arc<StocState>,
    rpc: Option<RpcServer>,
}

impl std::fmt::Debug for StocServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StocServer").field("id", &self.state.id).finish()
    }
}

impl StocServer {
    /// Start a StoC with `id` on fabric node `node`, backed by `medium`.
    ///
    /// The StoC registers itself in `directory` so that clients can find it.
    /// `storage_threads` worker threads execute storage requests and
    /// offloaded compactions; `xchg_threads` exchange threads pull the
    /// receive queue (Section 3.2).
    pub fn start(
        id: StocId,
        node: NodeId,
        fabric: &Arc<Fabric>,
        directory: StocDirectory,
        medium: Arc<dyn StorageMedium>,
        storage_threads: usize,
        xchg_threads: usize,
    ) -> StocServer {
        Self::start_with_io_parallelism(
            id,
            node,
            fabric,
            directory,
            medium,
            storage_threads,
            xchg_threads,
            crate::io_pool::DEFAULT_IO_PARALLELISM,
        )
    }

    /// [`StocServer::start`] with an explicit scatter-gather fan-out width
    /// for the StoC's own client (used by offloaded compactions to gather
    /// input fragments and scatter output tables).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_io_parallelism(
        id: StocId,
        node: NodeId,
        fabric: &Arc<Fabric>,
        directory: StocDirectory,
        medium: Arc<dyn StorageMedium>,
        storage_threads: usize,
        xchg_threads: usize,
        io_parallelism: usize,
    ) -> StocServer {
        let endpoint = fabric.endpoint(node);
        let client = StocClient::new(endpoint.clone(), directory.clone()).with_io_parallelism(io_parallelism);
        let state = Arc::new(StocState {
            id,
            node,
            endpoint: endpoint.clone(),
            medium,
            client,
            next_seq: AtomicU32::new(1),
            pending_writes: Mutex::new(HashMap::new()),
            mem_files: Mutex::new(HashMap::new()),
            persistent_logs: Mutex::new(HashMap::new()),
            compactions_executed: Counter::new(),
        });
        directory.register(id, node);
        let handler = Arc::new(StocHandler {
            state: Arc::clone(&state),
        });
        let rpc = RpcServer::start(endpoint, handler, xchg_threads.max(1), storage_threads);
        StocServer {
            state,
            rpc: Some(rpc),
        }
    }

    /// The StoC's shared state (for statistics and tests).
    pub fn state(&self) -> &Arc<StocState> {
        &self.state
    }

    /// This StoC's id.
    pub fn id(&self) -> StocId {
        self.state.id
    }

    /// The node hosting this StoC.
    pub fn node(&self) -> NodeId {
        self.state.node
    }

    /// Stop the RPC server threads.
    pub fn stop(mut self) {
        if let Some(rpc) = self.rpc.take() {
            rpc.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::SimDisk;
    use nova_common::config::DiskConfig;

    fn fast_disk() -> Arc<dyn StorageMedium> {
        Arc::new(SimDisk::new(DiskConfig {
            bandwidth_bytes_per_sec: u64::MAX / 2,
            seek_micros: 0,
            accounting_only: true,
        }))
    }

    fn cluster(num_stocs: usize) -> (Arc<Fabric>, StocDirectory, Vec<StocServer>, StocClient) {
        let fabric = Fabric::with_defaults(num_stocs + 1);
        let directory = StocDirectory::new();
        let servers: Vec<StocServer> = (0..num_stocs)
            .map(|i| {
                StocServer::start(
                    StocId(i as u32),
                    NodeId(i as u32 + 1),
                    &fabric,
                    directory.clone(),
                    fast_disk(),
                    2,
                    1,
                )
            })
            .collect();
        let client = StocClient::new(fabric.endpoint(NodeId(0)), directory.clone());
        (fabric, directory, servers, client)
    }

    #[test]
    fn write_and_read_blocks() {
        let (_fabric, _dir, servers, client) = cluster(2);
        let data = vec![7u8; 5000];
        let handle = client.write_block(StocId(0), &data).unwrap();
        assert_eq!(handle.stoc, StocId(0));
        assert_eq!(handle.size, 5000);
        let read = client.read_block(&handle).unwrap();
        assert_eq!(read.as_ref(), &data[..]);
        // Partial read.
        let partial = client.read_block_at(handle.stoc, handle.file, 100, 50).unwrap();
        assert_eq!(partial.as_ref(), &data[100..150]);
        // File management.
        assert_eq!(client.file_size(StocId(0), handle.file).unwrap(), 5000);
        assert_eq!(client.list_files(StocId(0)).unwrap(), vec![handle.file]);
        client.delete_file(StocId(0), handle.file).unwrap();
        assert!(client.read_block(&handle).is_err());
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn blocks_go_to_the_requested_stoc() {
        let (_fabric, _dir, servers, client) = cluster(3);
        let h0 = client.write_block(StocId(0), b"zero").unwrap();
        let h2 = client.write_block(StocId(2), b"two").unwrap();
        assert_eq!(h0.file.stoc(), StocId(0));
        assert_eq!(h2.file.stoc(), StocId(2));
        assert_eq!(client.list_files(StocId(1)).unwrap(), vec![]);
        assert_eq!(client.read_block(&h2).unwrap().as_ref(), b"two");
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn mem_files_are_one_sided() {
        let (_fabric, _dir, servers, client) = cluster(1);
        let handle = client.open_mem_file(StocId(0), "log/1/42", 4096).unwrap();
        client.write_mem(&handle, 0, b"record-a").unwrap();
        client.write_mem(&handle, 8, b"record-b").unwrap();
        assert_eq!(
            client.read_mem(&handle, 0, 16).unwrap().as_ref(),
            b"record-arecord-b"
        );
        // Reopening by name returns the same file.
        let again = client.open_mem_file(StocId(0), "log/1/42", 4096).unwrap();
        assert_eq!(again.file, handle.file);
        let found = client.get_mem_file(StocId(0), "log/1/42").unwrap();
        assert_eq!(found.region, handle.region);
        assert_eq!(
            client.list_mem_files(StocId(0), "log/1/").unwrap(),
            vec!["log/1/42".to_string()]
        );
        assert_eq!(
            client.list_mem_files(StocId(0), "log/2/").unwrap(),
            Vec::<String>::new()
        );
        client.delete_mem_file(StocId(0), "log/1/42").unwrap();
        assert!(client.get_mem_file(StocId(0), "log/1/42").is_err());
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn queue_depth_and_stats_are_observable() {
        let (_fabric, _dir, servers, client) = cluster(1);
        client.write_block(StocId(0), &[0u8; 1024]).unwrap();
        let stats = client.stats(StocId(0)).unwrap();
        assert_eq!(stats.bytes_written, 1024);
        assert_eq!(stats.num_files, 1);
        assert!(client.queue_depth(StocId(0)).unwrap() < 10);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn unknown_stoc_is_an_error() {
        let (_fabric, _dir, servers, client) = cluster(1);
        assert!(matches!(
            client.write_block(StocId(9), b"x"),
            Err(Error::UnknownStoc(_))
        ));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn block_reads_reuse_pooled_scratch_regions() {
        let (_fabric, _dir, servers, client) = cluster(1);
        let data = vec![3u8; 8192];
        let handle = client.write_block(StocId(0), &data).unwrap();
        for _ in 0..50 {
            assert_eq!(client.read_block(&handle).unwrap().as_ref(), &data[..]);
        }
        // Sequential reads check one scratch region in and out of the pool;
        // without reuse this node would have churned through 50 registrations.
        let pooled = client.endpoint().registered_bytes();
        assert!(
            pooled > 0 && pooled <= 128 << 10,
            "expected one pooled scratch region, found {pooled} registered bytes"
        );
        // Concurrent batch reads grow the pool at most to the fan-out width.
        let handles = vec![handle; 16];
        client.read_blocks(&handles).unwrap();
        client.read_blocks(&handles).unwrap();
        let pooled = client.endpoint().registered_bytes();
        assert!(
            pooled <= 16 * (64 << 10),
            "pool exceeded the fan-out width: {pooled} bytes"
        );
        // Dropping the last clone of the client deregisters the pool, so
        // client churn (e.g. range migration) cannot strand registered
        // memory on the node.
        let endpoint = client.endpoint().clone();
        drop(client);
        assert_eq!(
            endpoint.registered_bytes(),
            0,
            "scratch regions must be deregistered when the client drops"
        );
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn batch_write_and_read_round_trip_in_order() {
        let (_fabric, _dir, servers, client) = cluster(3);
        let payloads: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i; 1024 + i as usize]).collect();
        let writes: Vec<(StocId, &[u8])> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| (StocId(i as u32 % 3), p.as_slice()))
            .collect();
        let handles = client.write_blocks(&writes).unwrap();
        assert_eq!(handles.len(), payloads.len());
        for (handle, (stoc, _)) in handles.iter().zip(&writes) {
            assert_eq!(handle.stoc, *stoc);
        }
        let read_back = client.read_blocks(&handles).unwrap();
        for (bytes, payload) in read_back.iter().zip(&payloads) {
            assert_eq!(bytes.as_ref(), &payload[..]);
        }
        // Partial-range batch with per-item outcomes.
        let ranged: Vec<(StocId, nova_common::StocFileId, u64, usize)> =
            handles.iter().map(|h| (h.stoc, h.file, 1, 16)).collect();
        for (result, payload) in client.read_blocks_at(&ranged).into_iter().zip(&payloads) {
            assert_eq!(result.unwrap().as_ref(), &payload[1..17]);
        }
        // Batch delete is best-effort per file.
        let files: Vec<(StocId, nova_common::StocFileId)> =
            handles.iter().map(|h| (h.stoc, h.file)).collect();
        let outcomes = client.delete_files(&files);
        assert!(outcomes.iter().all(|r| r.is_ok()));
        let outcomes = client.delete_files(&files);
        assert!(
            outcomes.iter().all(|r| r.is_err()),
            "second delete reports per-file errors"
        );
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn batch_write_fails_whole_batch_on_unknown_stoc() {
        let (_fabric, _dir, servers, client) = cluster(2);
        let writes: Vec<(StocId, &[u8])> = vec![(StocId(0), b"ok"), (StocId(9), b"bad"), (StocId(1), b"ok")];
        assert!(matches!(
            client.write_blocks(&writes),
            Err(Error::UnknownStoc(StocId(9)))
        ));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn concurrent_clients_share_a_stoc() {
        let (fabric, dir, servers, _client) = cluster(2);
        let mut joins = Vec::new();
        for t in 0..3u32 {
            let client = StocClient::new(fabric.endpoint(NodeId(0)), dir.clone());
            joins.push(std::thread::spawn(move || {
                for i in 0..20u32 {
                    let data = format!("thread {t} block {i}").into_bytes();
                    let stoc = StocId(i % 2);
                    let handle = client.write_block(stoc, &data).unwrap();
                    assert_eq!(client.read_block(&handle).unwrap().as_ref(), &data[..]);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        for s in servers {
            s.stop();
        }
    }
}
