//! Writing and reading whole SSTables through StoCs.
//!
//! Writing follows Section 4.4: the LTC (or an offloaded compaction) splits a
//! built table into ρ fragments, writes each fragment to its assigned StoC in
//! parallel with the others, optionally writes replicas and a parity block,
//! and finally writes the metadata block(s). Reading resolves a logical
//! [`BlockLocation`] to the physical [`StocBlockHandle`] of the fragment and
//! falls back to replicas or parity reconstruction when a StoC has failed
//! (Section 4.4.1).

use crate::client::StocClient;
use bytes::Bytes;
use nova_common::{Error, FileNumber, Result, StocId};
use nova_sstable::{
    reconstruct_from_parity, BlockFetcher, BlockLocation, BuiltTable, FragmentLocation, SstableMeta,
};

/// Where each piece of a table should be written. Produced by the LTC's
/// placement + availability policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableWriteSpec {
    /// File number to record in the resulting [`SstableMeta`].
    pub file_number: FileNumber,
    /// Level the table belongs to.
    pub level: u32,
    /// Drange that produced the table (Level-0 only).
    pub drange: Option<u32>,
    /// For each fragment, the list of StoCs to write it to (first is the
    /// primary copy).
    pub fragment_placement: Vec<Vec<StocId>>,
    /// StoCs that receive a replica of the metadata block.
    pub meta_placement: Vec<StocId>,
    /// StoC that receives the parity block, if any.
    pub parity_placement: Option<StocId>,
}

/// Write a built table according to `spec`, returning its metadata.
pub fn write_table(client: &StocClient, built: &BuiltTable, spec: &TableWriteSpec) -> Result<SstableMeta> {
    if spec.fragment_placement.len() != built.fragments.len() {
        return Err(Error::InvalidArgument(format!(
            "placement covers {} fragments but the table has {}",
            spec.fragment_placement.len(),
            built.fragments.len()
        )));
    }
    let mut fragments = Vec::with_capacity(built.fragments.len());
    for (payload, stocs) in built.fragments.iter().zip(spec.fragment_placement.iter()) {
        if stocs.is_empty() {
            return Err(Error::InvalidArgument(
                "every fragment needs at least one StoC".into(),
            ));
        }
        let mut replicas = Vec::with_capacity(stocs.len());
        for &stoc in stocs {
            replicas.push(client.write_block(stoc, payload)?);
        }
        fragments.push(FragmentLocation {
            size: payload.len() as u64,
            replicas,
        });
    }

    let parity = match spec.parity_placement {
        Some(stoc) => Some(client.write_block(stoc, &built.parity_block())?),
        None => None,
    };

    let mut meta_blocks = Vec::with_capacity(spec.meta_placement.len().max(1));
    let meta_targets: &[StocId] = if spec.meta_placement.is_empty() {
        // Default: co-locate the metadata block with the first fragment's
        // primary copy.
        &spec.fragment_placement[0][..1]
    } else {
        &spec.meta_placement
    };
    for &stoc in meta_targets {
        meta_blocks.push(client.write_block(stoc, &built.meta)?);
    }

    Ok(SstableMeta {
        file_number: spec.file_number,
        level: spec.level,
        smallest: built.properties.smallest.clone(),
        largest: built.properties.largest.clone(),
        num_entries: built.properties.num_entries,
        data_size: built.properties.data_size,
        fragments,
        meta_blocks,
        parity,
        drange: spec.drange,
    })
}

/// Read the metadata block of a table, trying each replica in turn.
pub fn read_meta_block(client: &StocClient, meta: &SstableMeta) -> Result<Bytes> {
    let mut last_err = Error::Unavailable(format!("table {} has no metadata replicas", meta.file_number));
    for handle in &meta.meta_blocks {
        match client.read_block(handle) {
            Ok(bytes) => return Ok(bytes),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Read one whole data fragment, falling back to replicas and then to parity
/// reconstruction if its StoCs are unavailable.
pub fn read_fragment(client: &StocClient, meta: &SstableMeta, index: usize) -> Result<Bytes> {
    let fragment = meta
        .fragments
        .get(index)
        .ok_or_else(|| Error::InvalidArgument(format!("fragment {index} does not exist")))?;
    let mut last_err = Error::Unavailable(format!("fragment {index} has no replicas"));
    for handle in &fragment.replicas {
        match client.read_block(handle) {
            Ok(bytes) => return Ok(bytes),
            Err(e) => last_err = e,
        }
    }
    // Degraded read: reconstruct from parity and the other fragments
    // (Section 3.1: "the LTC reads the parity block and the other ρ−1 data
    // block fragments to recover the missing fragment").
    if let Some(parity_handle) = &meta.parity {
        let parity = client.read_block(parity_handle)?;
        let mut survivors = Vec::with_capacity(meta.fragments.len().saturating_sub(1));
        for (i, other) in meta.fragments.iter().enumerate() {
            if i == index {
                continue;
            }
            let mut fetched = None;
            for handle in &other.replicas {
                if let Ok(bytes) = client.read_block(handle) {
                    fetched = Some(bytes);
                    break;
                }
            }
            match fetched {
                Some(bytes) => survivors.push(bytes),
                None => {
                    return Err(Error::Unavailable(format!(
                        "cannot reconstruct fragment {index}: fragment {i} is also unavailable"
                    )))
                }
            }
        }
        return Ok(Bytes::from(reconstruct_from_parity(
            &parity,
            &survivors,
            fragment.size as usize,
        )));
    }
    Err(last_err)
}

/// A [`BlockFetcher`] that resolves logical block locations against the
/// physical fragment handles of one table and reads them through a
/// [`StocClient`], with replica and parity fallback.
pub struct ScatteredBlockFetcher<'a> {
    client: &'a StocClient,
    meta: &'a SstableMeta,
}

impl<'a> ScatteredBlockFetcher<'a> {
    /// Create a fetcher for `meta`.
    pub fn new(client: &'a StocClient, meta: &'a SstableMeta) -> Self {
        ScatteredBlockFetcher { client, meta }
    }
}

impl BlockFetcher for ScatteredBlockFetcher<'_> {
    fn fetch(&self, location: &BlockLocation) -> Result<Bytes> {
        let fragment = self
            .meta
            .fragments
            .get(location.fragment as usize)
            .ok_or_else(|| {
                Error::Corruption(format!("block references unknown fragment {}", location.fragment))
            })?;
        let mut last_err = Error::Unavailable("fragment has no replicas".into());
        for handle in &fragment.replicas {
            match self.client.read_block_at(
                handle.stoc,
                handle.file,
                handle.offset + location.offset,
                location.size as usize,
            ) {
                Ok(bytes) => return Ok(bytes),
                Err(e) => last_err = e,
            }
        }
        // Degraded path: rebuild the whole fragment, then slice out the block.
        if self.meta.parity.is_some() {
            let fragment_bytes = read_fragment(self.client, self.meta, location.fragment as usize)?;
            let start = location.offset as usize;
            let end = start + location.size as usize;
            if end > fragment_bytes.len() {
                return Err(Error::Corruption(
                    "block extends past reconstructed fragment".into(),
                ));
            }
            return Ok(fragment_bytes.slice(start..end));
        }
        Err(last_err)
    }
}

/// Delete every physical piece of a table (fragments, replicas, parity,
/// metadata blocks). Missing pieces are ignored so deletion is idempotent.
pub fn delete_table(client: &StocClient, meta: &SstableMeta) {
    for fragment in &meta.fragments {
        for handle in &fragment.replicas {
            let _ = client.delete_file(handle.stoc, handle.file);
        }
    }
    for handle in &meta.meta_blocks {
        let _ = client.delete_file(handle.stoc, handle.file);
    }
    if let Some(parity) = &meta.parity {
        let _ = client.delete_file(parity.stoc, parity.file);
    }
}

/// A helper used by tests and by single-node deployments: a write spec that
/// stores every fragment, the metadata block and no parity on one StoC.
pub fn local_spec(
    file_number: FileNumber,
    level: u32,
    drange: Option<u32>,
    num_fragments: usize,
    stoc: StocId,
) -> TableWriteSpec {
    TableWriteSpec {
        file_number,
        level,
        drange,
        fragment_placement: vec![vec![stoc]; num_fragments],
        meta_placement: vec![stoc],
        parity_placement: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_spec_shape() {
        let spec = local_spec(7, 1, Some(3), 4, StocId(2));
        assert_eq!(spec.fragment_placement.len(), 4);
        assert!(spec.fragment_placement.iter().all(|p| p == &vec![StocId(2)]));
        assert_eq!(spec.meta_placement, vec![StocId(2)]);
        assert_eq!(spec.parity_placement, None);
        assert_eq!(spec.file_number, 7);
        assert_eq!(spec.level, 1);
        assert_eq!(spec.drange, Some(3));
    }
}
