//! Writing and reading whole SSTables through StoCs.
//!
//! Writing follows Section 4.4: the LTC (or an offloaded compaction) splits a
//! built table into ρ fragments, writes each fragment to its assigned StoC in
//! parallel with the others, optionally writes replicas and a parity block,
//! and finally writes the metadata block(s). Reading resolves a logical
//! [`BlockLocation`] to the physical [`StocBlockHandle`] of the fragment and
//! falls back to replicas or parity reconstruction when a StoC has failed
//! (Section 4.4.1).

use crate::client::StocClient;
use bytes::Bytes;
use nova_common::{Error, FileNumber, Result, StocId};
use nova_sstable::{
    reconstruct_from_parity, BlockFetcher, BlockLocation, BuiltTable, FragmentLocation, SstableMeta,
};

/// Where each piece of a table should be written. Produced by the LTC's
/// placement + availability policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableWriteSpec {
    /// File number to record in the resulting [`SstableMeta`].
    pub file_number: FileNumber,
    /// Level the table belongs to.
    pub level: u32,
    /// Drange that produced the table (Level-0 only).
    pub drange: Option<u32>,
    /// For each fragment, the list of StoCs to write it to (first is the
    /// primary copy).
    pub fragment_placement: Vec<Vec<StocId>>,
    /// StoCs that receive a replica of the metadata block.
    pub meta_placement: Vec<StocId>,
    /// StoC that receives the parity block, if any.
    pub parity_placement: Option<StocId>,
}

/// Write a built table according to `spec`, returning its metadata.
///
/// Every physical block of the table — each fragment replica, the parity
/// block and each metadata-block replica — is one job on the client's I/O
/// pool, so the whole flush is in flight together and its latency approaches
/// `max(block write)` instead of `sum(block writes)` (Section 4.4,
/// Figure 10). A client with I/O parallelism 1 degenerates to the serial
/// fragment-by-fragment order and produces identical metadata.
pub fn write_table(client: &StocClient, built: &BuiltTable, spec: &TableWriteSpec) -> Result<SstableMeta> {
    if spec.fragment_placement.len() != built.fragments.len() {
        return Err(Error::InvalidArgument(format!(
            "placement covers {} fragments but the table has {}",
            spec.fragment_placement.len(),
            built.fragments.len()
        )));
    }
    if spec.fragment_placement.iter().any(|stocs| stocs.is_empty()) {
        return Err(Error::InvalidArgument(
            "every fragment needs at least one StoC".into(),
        ));
    }

    // Flatten the write plan in the serial order (fragments replica-by-
    // replica, then parity, then metadata replicas) so submission order —
    // and therefore the serial fallback and error precedence — is stable.
    let parity_payload = spec.parity_placement.map(|_| built.parity_block());
    let meta_targets: &[StocId] = if spec.meta_placement.is_empty() {
        // Default: co-locate the metadata block with the first fragment's
        // primary copy.
        &spec.fragment_placement[0][..1]
    } else {
        &spec.meta_placement
    };
    let mut writes: Vec<(StocId, &[u8])> = Vec::new();
    for (payload, stocs) in built.fragments.iter().zip(spec.fragment_placement.iter()) {
        for &stoc in stocs {
            writes.push((stoc, payload));
        }
    }
    if let (Some(stoc), Some(payload)) = (spec.parity_placement, parity_payload.as_deref()) {
        writes.push((stoc, payload));
    }
    for &stoc in meta_targets {
        writes.push((stoc, &built.meta));
    }

    let mut handles = client.write_blocks(&writes)?.into_iter();

    let mut fragments = Vec::with_capacity(built.fragments.len());
    for (payload, stocs) in built.fragments.iter().zip(spec.fragment_placement.iter()) {
        let replicas: Vec<_> = handles.by_ref().take(stocs.len()).collect();
        fragments.push(FragmentLocation {
            size: payload.len() as u64,
            replicas,
        });
    }
    let parity = spec.parity_placement.map(|_| {
        handles
            .next()
            .expect("write_blocks returned one handle per submitted write")
    });
    let meta_blocks: Vec<_> = handles.collect();
    debug_assert_eq!(meta_blocks.len(), meta_targets.len());

    Ok(SstableMeta {
        file_number: spec.file_number,
        level: spec.level,
        smallest: built.properties.smallest.clone(),
        largest: built.properties.largest.clone(),
        num_entries: built.properties.num_entries,
        data_size: built.properties.data_size,
        fragments,
        meta_blocks,
        parity,
        drange: spec.drange,
    })
}

/// Read the metadata block of a table, trying each replica in turn.
pub fn read_meta_block(client: &StocClient, meta: &SstableMeta) -> Result<Bytes> {
    let mut last_err = Error::Unavailable(format!("table {} has no metadata replicas", meta.file_number));
    for handle in &meta.meta_blocks {
        match client.read_block(handle) {
            Ok(bytes) => return Ok(bytes),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Read one whole data fragment, falling back to replicas and then to parity
/// reconstruction if its StoCs are unavailable.
pub fn read_fragment(client: &StocClient, meta: &SstableMeta, index: usize) -> Result<Bytes> {
    let fragment = meta
        .fragments
        .get(index)
        .ok_or_else(|| Error::InvalidArgument(format!("fragment {index} does not exist")))?;
    let mut last_err = Error::Unavailable(format!("fragment {index} has no replicas"));
    for handle in &fragment.replicas {
        match client.read_block(handle) {
            Ok(bytes) => return Ok(bytes),
            Err(e) => last_err = e,
        }
    }
    // Degraded read: reconstruct from parity and the other fragments
    // (Section 3.1: "the LTC reads the parity block and the other ρ−1 data
    // block fragments to recover the missing fragment"). The parity block
    // and every surviving fragment are fetched concurrently — the ρ−1
    // survivors live on distinct StoCs, so a serial loop would pay ρ round
    // trips for a read the paper models as one.
    if let Some(parity_handle) = &meta.parity {
        let mut jobs: Vec<Box<dyn FnOnce() -> Result<Bytes> + Send>> =
            vec![Box::new(move || client.read_block(parity_handle))];
        for (i, other) in meta.fragments.iter().enumerate() {
            if i == index {
                continue;
            }
            jobs.push(Box::new(move || {
                let mut last = Error::Unavailable(format!(
                    "cannot reconstruct fragment {index}: fragment {i} is also unavailable"
                ));
                for handle in &other.replicas {
                    match client.read_block(handle) {
                        Ok(bytes) => return Ok(bytes),
                        Err(e) => {
                            last = Error::Unavailable(format!(
                                "cannot reconstruct fragment {index}: fragment {i} is also unavailable: {e}"
                            ))
                        }
                    }
                }
                Err(last)
            }));
        }
        let mut pieces = client.io_pool().run_all(jobs)?.into_iter();
        let parity = pieces.next().expect("parity read was submitted first");
        let survivors: Vec<Bytes> = pieces.collect();
        return Ok(Bytes::from(reconstruct_from_parity(
            &parity,
            &survivors,
            fragment.size as usize,
        )));
    }
    Err(last_err)
}

/// A [`BlockFetcher`] that resolves logical block locations against the
/// physical fragment handles of one table and reads them through a
/// [`StocClient`], with replica and parity fallback.
pub struct ScatteredBlockFetcher<'a> {
    client: &'a StocClient,
    meta: &'a SstableMeta,
}

impl<'a> ScatteredBlockFetcher<'a> {
    /// Create a fetcher for `meta`.
    pub fn new(client: &'a StocClient, meta: &'a SstableMeta) -> Self {
        ScatteredBlockFetcher { client, meta }
    }
}

impl BlockFetcher for ScatteredBlockFetcher<'_> {
    fn fetch(&self, location: &BlockLocation) -> Result<Bytes> {
        let fragment = self
            .meta
            .fragments
            .get(location.fragment as usize)
            .ok_or_else(|| {
                Error::Corruption(format!("block references unknown fragment {}", location.fragment))
            })?;
        let mut last_err = Error::Unavailable("fragment has no replicas".into());
        for handle in &fragment.replicas {
            match self.client.read_block_at(
                handle.stoc,
                handle.file,
                handle.offset + location.offset,
                location.size as usize,
            ) {
                Ok(bytes) => return Ok(bytes),
                Err(e) => last_err = e,
            }
        }
        // Degraded path: rebuild the whole fragment, then slice out the block.
        if self.meta.parity.is_some() {
            let fragment_bytes = read_fragment(self.client, self.meta, location.fragment as usize)?;
            let start = location.offset as usize;
            let end = start + location.size as usize;
            if end > fragment_bytes.len() {
                return Err(Error::Corruption(
                    "block extends past reconstructed fragment".into(),
                ));
            }
            return Ok(fragment_bytes.slice(start..end));
        }
        Err(last_err)
    }

    /// Fan the batch out across the client's I/O pool: every block is one
    /// fetch (with its own replica/parity fallback), so a scan's readahead
    /// window costs one round trip instead of one per block.
    fn fetch_many(&self, locations: &[BlockLocation]) -> Vec<Result<Bytes>> {
        self.client.io_pool().run(
            locations
                .iter()
                .map(|location| move || self.fetch(location))
                .collect(),
        )
    }
}

/// Delete every physical piece of a table (fragments, replicas, parity,
/// metadata blocks) concurrently. Missing pieces are ignored so deletion is
/// idempotent.
pub fn delete_table(client: &StocClient, meta: &SstableMeta) {
    let files: Vec<(StocId, nova_common::StocFileId)> = meta
        .fragments
        .iter()
        .flat_map(|f| f.replicas.iter())
        .chain(meta.meta_blocks.iter())
        .chain(meta.parity.iter())
        .map(|h| (h.stoc, h.file))
        .collect();
    let _ = client.delete_files(&files);
}

/// A helper used by tests and by single-node deployments: a write spec that
/// stores every fragment, the metadata block and no parity on one StoC.
pub fn local_spec(
    file_number: FileNumber,
    level: u32,
    drange: Option<u32>,
    num_fragments: usize,
    stoc: StocId,
) -> TableWriteSpec {
    TableWriteSpec {
        file_number,
        level,
        drange,
        fragment_placement: vec![vec![stoc]; num_fragments],
        meta_placement: vec![stoc],
        parity_placement: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::{SimDisk, StorageMedium};
    use crate::server::StocServer;
    use crate::StocDirectory;
    use nova_common::config::DiskConfig;
    use nova_common::types::Entry;
    use nova_common::NodeId;
    use nova_fabric::Fabric;
    use nova_sstable::{TableBuilder, TableOptions};
    use std::sync::Arc;

    fn start_cluster(num_stocs: usize) -> (Arc<Fabric>, StocDirectory, Vec<StocServer>) {
        let fabric = Fabric::with_defaults(num_stocs + 1);
        let directory = StocDirectory::new();
        let servers: Vec<StocServer> = (0..num_stocs)
            .map(|i| {
                let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(DiskConfig {
                    bandwidth_bytes_per_sec: u64::MAX / 2,
                    seek_micros: 0,
                    accounting_only: true,
                }));
                StocServer::start(
                    StocId(i as u32),
                    NodeId(i as u32 + 1),
                    &fabric,
                    directory.clone(),
                    medium,
                    2,
                    1,
                )
            })
            .collect();
        (fabric, directory, servers)
    }

    fn build_test_table(num_entries: u64, num_fragments: usize) -> (BuiltTable, Vec<Entry>) {
        let entries: Vec<Entry> = (0..num_entries)
            .map(|i| {
                Entry::put(
                    format!("key-{i:06}").into_bytes(),
                    i + 1,
                    format!("value-{i:04}").into_bytes(),
                )
            })
            .collect();
        let mut builder = TableBuilder::new(TableOptions {
            block_size: 512,
            bloom_bits_per_key: 10,
            num_fragments,
        });
        for e in &entries {
            builder.add(e);
        }
        (builder.finish().unwrap(), entries)
    }

    /// One block per StoC: fragment i → StoC i, parity → StoC ρ, metadata →
    /// StoC ρ+1. With a single write per StoC, file-id allocation cannot
    /// race, so serial and parallel writes must produce byte-identical
    /// metadata.
    fn one_block_per_stoc_spec(num_fragments: usize) -> TableWriteSpec {
        TableWriteSpec {
            file_number: 11,
            level: 0,
            drange: Some(2),
            fragment_placement: (0..num_fragments).map(|i| vec![StocId(i as u32)]).collect(),
            parity_placement: Some(StocId(num_fragments as u32)),
            meta_placement: vec![StocId(num_fragments as u32 + 1)],
        }
    }

    #[test]
    fn parallel_write_table_metadata_is_byte_identical_to_serial() {
        let (built, _) = build_test_table(400, 4);
        let spec = one_block_per_stoc_spec(4);

        let write_with_parallelism = |parallelism: usize| {
            let (fabric, directory, servers) = start_cluster(6);
            let client =
                StocClient::new(fabric.endpoint(NodeId(0)), directory).with_io_parallelism(parallelism);
            let meta = write_table(&client, &built, &spec).unwrap();
            // Round-trip the data to prove the handles are not just equal
            // but valid.
            for (i, payload) in built.fragments.iter().enumerate() {
                assert_eq!(read_fragment(&client, &meta, i).unwrap().as_ref(), &payload[..]);
            }
            assert_eq!(read_meta_block(&client, &meta).unwrap().as_ref(), &built.meta[..]);
            for s in servers {
                s.stop();
            }
            meta
        };

        let serial = write_with_parallelism(1);
        let parallel = write_with_parallelism(8);
        assert_eq!(
            serial.encode(),
            parallel.encode(),
            "parallel scatter must not change the produced metadata"
        );
    }

    #[test]
    fn degraded_reads_reconstruct_while_fragment_reads_race() {
        let (built, _) = build_test_table(600, 4);
        let (fabric, directory, servers) = start_cluster(6);
        let client = StocClient::new(fabric.endpoint(NodeId(0)), directory).with_io_parallelism(8);
        let spec = one_block_per_stoc_spec(4);
        let meta = write_table(&client, &built, &spec).unwrap();

        // Kill the StoC holding fragment 1; its reads must fall back to
        // parity reconstruction while other threads keep hammering the
        // surviving fragments.
        fabric.fail_node(NodeId(2));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let healthy_client = client.clone();
                let degraded_client = client.clone();
                let meta = &meta;
                let built = &built;
                scope.spawn(move || {
                    for round in 0..8 {
                        for i in [0usize, 2, 3] {
                            let bytes = read_fragment(&healthy_client, meta, i).unwrap();
                            assert_eq!(bytes.as_ref(), &built.fragments[i][..], "round {round}");
                        }
                    }
                });
                scope.spawn(move || {
                    for _ in 0..4 {
                        let rebuilt = read_fragment(&degraded_client, meta, 1).unwrap();
                        assert_eq!(rebuilt.as_ref(), &built.fragments[1][..]);
                    }
                });
            }
        });
        fabric.recover_node(NodeId(2));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn degraded_read_fails_cleanly_when_two_fragments_are_down() {
        let (built, _) = build_test_table(300, 3);
        let (fabric, directory, servers) = start_cluster(5);
        let client = StocClient::new(fabric.endpoint(NodeId(0)), directory).with_io_parallelism(4);
        let meta = write_table(&client, &built, &one_block_per_stoc_spec(3)).unwrap();
        fabric.fail_node(NodeId(1));
        fabric.fail_node(NodeId(2));
        // No hang, and a descriptive unavailability error.
        match read_fragment(&client, &meta, 0) {
            Err(Error::Unavailable(msg)) => assert!(msg.contains("cannot reconstruct"), "{msg}"),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn scattered_fetch_many_matches_single_fetches() {
        use nova_sstable::BlockFetcher;
        let (built, _) = build_test_table(500, 3);
        let (fabric, directory, servers) = start_cluster(5);
        let client = StocClient::new(fabric.endpoint(NodeId(0)), directory).with_io_parallelism(8);
        let meta = write_table(&client, &built, &one_block_per_stoc_spec(3)).unwrap();
        let fetcher = ScatteredBlockFetcher::new(&client, &meta);

        // Fabricate block locations straddling fragment boundaries.
        let locations: Vec<nova_sstable::BlockLocation> = (0..3)
            .flat_map(|fragment| {
                let size = built.fragments[fragment as usize].len() as u32;
                vec![
                    nova_sstable::BlockLocation {
                        fragment,
                        offset: 0,
                        size: (size / 2).max(1),
                    },
                    nova_sstable::BlockLocation {
                        fragment,
                        offset: (size / 2) as u64,
                        size: size - size / 2,
                    },
                ]
            })
            .collect();
        let batched = fetcher.fetch_many(&locations);
        assert_eq!(batched.len(), locations.len());
        for (location, result) in locations.iter().zip(batched) {
            assert_eq!(result.unwrap(), fetcher.fetch(location).unwrap());
        }
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn local_spec_shape() {
        let spec = local_spec(7, 1, Some(3), 4, StocId(2));
        assert_eq!(spec.fragment_placement.len(), 4);
        assert!(spec.fragment_placement.iter().all(|p| p == &vec![StocId(2)]));
        assert_eq!(spec.meta_placement, vec![StocId(2)]);
        assert_eq!(spec.parity_placement, None);
        assert_eq!(spec.file_number, 7);
        assert_eq!(spec.level, 1);
        assert_eq!(spec.drange, Some(3));
    }
}
