//! Benchmark run reports.

use nova_common::histogram::{Histogram, ThroughputSeries};
use std::time::Duration;

/// The outcome of one benchmark run: the numbers the paper's figures and
/// tables are built from.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The workload label, e.g. `"RW50 Zipfian"`.
    pub workload: String,
    /// Total operations completed.
    pub operations: u64,
    /// Operations that returned an error (excluding not-found reads).
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Latency of gets.
    pub gets: Histogram,
    /// Latency of puts.
    pub puts: Histogram,
    /// Latency of scans.
    pub scans: Histogram,
    /// Throughput over time.
    pub series: ThroughputSeries,
}

impl RunReport {
    /// Assemble a report.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        workload: String,
        operations: u64,
        errors: u64,
        elapsed: Duration,
        gets: Histogram,
        puts: Histogram,
        scans: Histogram,
        series: ThroughputSeries,
    ) -> Self {
        RunReport {
            workload,
            operations,
            errors,
            elapsed,
            gets,
            puts,
            scans,
            series,
        }
    }

    /// Overall throughput in operations per second.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.operations as f64 / secs
        }
    }

    /// Throughput in the paper's preferred unit (×1000 ops/s).
    pub fn throughput_kops(&self) -> f64 {
        self.throughput_ops_per_sec() / 1000.0
    }

    /// A latency histogram merging all operation types (used by Table 7).
    pub fn all_operations(&self) -> Histogram {
        let mut h = Histogram::new();
        h.merge(&self.gets);
        h.merge(&self.puts);
        h.merge(&self.scans);
        h
    }

    /// Median latency across all operation types, in microseconds.
    pub fn p50_micros(&self) -> f64 {
        self.all_operations().percentile_micros(50.0)
    }

    /// 99th-percentile latency across all operation types, in microseconds.
    pub fn p99_micros(&self) -> f64 {
        self.all_operations().percentile_micros(99.0)
    }

    /// One-line summary suitable for experiment output.
    pub fn summary(&self) -> String {
        format!(
            "{:<14} {:>10.1} kops/s  ops={:<9} errors={:<4} p50={:.0}us p99={:.0}us put[{}] get[{}] scan[{}]",
            self.workload,
            self.throughput_kops(),
            self.operations,
            self.errors,
            self.p50_micros(),
            self.p99_micros(),
            self.puts.summary(),
            self.gets.summary(),
            self.scans.summary(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let mut gets = Histogram::new();
        gets.record_micros(100);
        let report = RunReport::new(
            "RW50 Uniform".into(),
            10_000,
            2,
            Duration::from_secs(2),
            gets,
            Histogram::new(),
            Histogram::new(),
            ThroughputSeries::new(),
        );
        assert_eq!(report.throughput_ops_per_sec(), 5_000.0);
        assert_eq!(report.throughput_kops(), 5.0);
        assert_eq!(report.all_operations().count(), 1);
        assert!(report.summary().contains("RW50 Uniform"));
    }

    #[test]
    fn zero_duration_is_safe() {
        let report = RunReport::new(
            "W100".into(),
            1,
            0,
            Duration::ZERO,
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
            ThroughputSeries::new(),
        );
        assert_eq!(report.throughput_ops_per_sec(), 0.0);
    }
}
