//! YCSB-style workload definitions (Table 3 of the paper) and the key /
//! operation generators that drive them.

use crate::zipfian::Zipfian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The access distributions evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Every key is equally likely.
    Uniform,
    /// Zipfian with the given constant (YCSB default 0.99).
    Zipfian(f64),
}

impl Distribution {
    /// The paper's default skewed distribution.
    pub fn zipfian_default() -> Self {
        Distribution::Zipfian(0.99)
    }

    /// A short human-readable label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            Distribution::Uniform => "Uniform".to_string(),
            Distribution::Zipfian(c) => {
                if (*c - 0.99).abs() < 1e-9 {
                    "Zipfian".to_string()
                } else {
                    format!("Zipf {c}")
                }
            }
        }
    }
}

/// The operation mixes of Table 3, plus the read-only mix used by the
/// response-time experiment (Table 7) and the scan-heavy YCSB workload E.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 50% read, 50% write.
    Rw50,
    /// 50% scan, 50% write.
    Sw50,
    /// 100% write.
    W100,
    /// 100% read.
    R100,
    /// YCSB workload E: 95% short range scans, 5% inserts. The scan-heavy
    /// workload the streaming range-scan cursor opens up.
    E,
    /// 50% secondary lookups, 50% writes. Writes carry a fixed-width
    /// category prefix (see [`category_of`]); lookups fetch the primaries
    /// of one category through the driver's `secondary_lookup` hook — the
    /// workload the ordered secondary index opens up.
    Sl50,
}

/// Number of distinct categories the secondary-lookup mix writes.
pub const NUM_CATEGORIES: u64 = 100;

/// Width in bytes of the category prefix ([`category_of`]).
pub const CATEGORY_WIDTH: usize = 4;

/// The fixed-width category code of `key`: `key % NUM_CATEGORIES`,
/// zero-padded to [`CATEGORY_WIDTH`] digits. Indexing the first
/// [`CATEGORY_WIDTH`] bytes of the value recovers it.
pub fn category_of(key: u64) -> Vec<u8> {
    format!("{:0width$}", key % NUM_CATEGORIES, width = CATEGORY_WIDTH).into_bytes()
}

/// A value of `value_size` bytes whose first [`CATEGORY_WIDTH`] bytes are
/// the category code of `key` (short values are grown to fit the prefix).
pub fn category_value(key: u64, value_size: usize) -> Vec<u8> {
    let mut value = category_of(key);
    value.resize(value_size.max(CATEGORY_WIDTH), b'w');
    value
}

impl Mix {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Mix::Rw50 => "RW50",
            Mix::Sw50 => "SW50",
            Mix::W100 => "W100",
            Mix::R100 => "R100",
            Mix::E => "E",
            Mix::Sl50 => "SL50",
        }
    }

    /// All mixes used by Figure 1 / 11 / 18.
    pub fn standard() -> [Mix; 3] {
        [Mix::Rw50, Mix::W100, Mix::Sw50]
    }
}

/// One operation drawn from a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Read a single key.
    Get {
        /// The numeric key.
        key: u64,
    },
    /// Write a value of `value_size` bytes to a key.
    Put {
        /// The numeric key.
        key: u64,
        /// Value size in bytes.
        value_size: usize,
    },
    /// Scan `count` records starting at a key.
    Scan {
        /// The numeric start key.
        start_key: u64,
        /// Number of records to read (the paper uses 10).
        count: usize,
    },
    /// Fetch up to `limit` primaries whose secondary key is `category`.
    SecondaryLookup {
        /// The category code (`key % NUM_CATEGORIES`).
        category: u64,
        /// Maximum primaries to fetch.
        limit: usize,
    },
}

/// A complete workload description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Operation mix.
    pub mix: Mix,
    /// Key popularity distribution.
    pub distribution: Distribution,
    /// Number of records in the database.
    pub num_keys: u64,
    /// Value size in bytes (1 KB in the paper).
    pub value_size: usize,
    /// Records per scan (10 in the paper).
    pub scan_length: usize,
}

impl Workload {
    /// Create a workload over `num_keys` records.
    pub fn new(mix: Mix, distribution: Distribution, num_keys: u64, value_size: usize) -> Self {
        Workload {
            mix,
            distribution,
            num_keys,
            value_size,
            scan_length: 10,
        }
    }

    /// The label used in the paper's figures, e.g. `"RW50 Zipfian"`.
    pub fn label(&self) -> String {
        format!("{} {}", self.mix.label(), self.distribution.label())
    }

    /// The YCSB workload E preset: 95% short range scans / 5% inserts over
    /// a Zipfian-chosen start key, the standard scan-heavy configuration.
    pub fn workload_e(num_keys: u64, value_size: usize) -> Self {
        Workload::new(Mix::E, Distribution::zipfian_default(), num_keys, value_size)
    }
}

/// A per-thread operation generator: owns its RNG so threads do not contend.
#[derive(Debug)]
pub struct OperationGenerator {
    workload: Workload,
    zipf: Option<Zipfian>,
    rng: StdRng,
}

impl OperationGenerator {
    /// Create a generator for `workload` seeded with `seed`.
    pub fn new(workload: Workload, seed: u64) -> Self {
        let zipf = match workload.distribution {
            Distribution::Uniform => None,
            Distribution::Zipfian(theta) => Some(Zipfian::new(workload.num_keys, theta)),
        };
        OperationGenerator {
            workload,
            zipf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The workload this generator draws from.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    fn next_key(&mut self) -> u64 {
        match &self.zipf {
            Some(z) => z.next(&mut self.rng),
            None => self.rng.gen_range(0..self.workload.num_keys),
        }
    }

    /// Draw the next operation.
    pub fn next_operation(&mut self) -> Operation {
        let key = self.next_key();
        let write = Operation::Put {
            key,
            value_size: self.workload.value_size,
        };
        match self.workload.mix {
            Mix::W100 => write,
            Mix::R100 => Operation::Get { key },
            Mix::Rw50 => {
                if self.rng.gen_bool(0.5) {
                    Operation::Get { key }
                } else {
                    write
                }
            }
            Mix::Sw50 => {
                if self.rng.gen_bool(0.5) {
                    Operation::Scan {
                        start_key: key,
                        count: self.workload.scan_length,
                    }
                } else {
                    write
                }
            }
            Mix::E => {
                if self.rng.gen_bool(0.95) {
                    Operation::Scan {
                        start_key: key,
                        count: self.workload.scan_length,
                    }
                } else {
                    write
                }
            }
            Mix::Sl50 => {
                if self.rng.gen_bool(0.5) {
                    Operation::SecondaryLookup {
                        category: key % NUM_CATEGORIES,
                        limit: self.workload.scan_length,
                    }
                } else {
                    write
                }
            }
        }
    }

    /// Draw a key for the load phase (sequential loading uses `0..num_keys`
    /// directly; this is for random refills).
    pub fn next_load_key(&mut self) -> u64 {
        self.rng.gen_range(0..self.workload.num_keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Mix::Rw50.label(), "RW50");
        assert_eq!(Mix::Sw50.label(), "SW50");
        assert_eq!(Mix::W100.label(), "W100");
        assert_eq!(Mix::R100.label(), "R100");
        assert_eq!(Distribution::Uniform.label(), "Uniform");
        assert_eq!(Distribution::zipfian_default().label(), "Zipfian");
        assert_eq!(Distribution::Zipfian(0.73).label(), "Zipf 0.73");
        let w = Workload::new(Mix::Rw50, Distribution::Uniform, 100, 1024);
        assert_eq!(w.label(), "RW50 Uniform");
        assert_eq!(Mix::standard().len(), 3);
    }

    #[test]
    fn mixes_produce_the_right_operation_ratios() {
        let workload = Workload::new(Mix::Rw50, Distribution::Uniform, 1000, 64);
        let mut generator = OperationGenerator::new(workload, 42);
        let mut gets = 0;
        let mut puts = 0;
        for _ in 0..10_000 {
            match generator.next_operation() {
                Operation::Get { .. } => gets += 1,
                Operation::Put { .. } => puts += 1,
                _ => panic!("RW50 only reads and writes"),
            }
        }
        let ratio = gets as f64 / (gets + puts) as f64;
        assert!((ratio - 0.5).abs() < 0.05, "RW50 read ratio {ratio}");

        let workload = Workload::new(Mix::W100, Distribution::Uniform, 1000, 64);
        let mut generator = OperationGenerator::new(workload, 42);
        assert!((0..1000).all(|_| matches!(generator.next_operation(), Operation::Put { .. })));

        let workload = Workload::new(Mix::Sw50, Distribution::Uniform, 1000, 64);
        let mut generator = OperationGenerator::new(workload, 42);
        let scans = (0..10_000)
            .filter(|_| matches!(generator.next_operation(), Operation::Scan { count: 10, .. }))
            .count();
        assert!(scans > 4_000 && scans < 6_000);

        let workload = Workload::new(Mix::R100, Distribution::Uniform, 1000, 64);
        let mut generator = OperationGenerator::new(workload, 42);
        assert!((0..1000).all(|_| matches!(generator.next_operation(), Operation::Get { .. })));

        // Workload E is scan-heavy: ~95% scans, the rest inserts.
        let workload = Workload::workload_e(1000, 64);
        assert_eq!(workload.label(), "E Zipfian");
        let mut generator = OperationGenerator::new(workload, 42);
        let mut scans = 0;
        for _ in 0..10_000 {
            match generator.next_operation() {
                Operation::Scan { .. } => scans += 1,
                Operation::Put { .. } => {}
                _ => panic!("workload E only scans and inserts"),
            }
        }
        assert!((9_300..9_700).contains(&scans), "E scan share {scans}/10000");
    }

    #[test]
    fn keys_stay_in_bounds_for_both_distributions() {
        for dist in [Distribution::Uniform, Distribution::zipfian_default()] {
            let workload = Workload::new(Mix::W100, dist, 500, 8);
            let mut generator = OperationGenerator::new(workload, 9);
            for _ in 0..5_000 {
                match generator.next_operation() {
                    Operation::Put { key, .. } => assert!(key < 500),
                    _ => unreachable!(),
                }
            }
            assert!(generator.next_load_key() < 500);
            assert_eq!(generator.workload().num_keys, 500);
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let workload = Workload::new(Mix::Rw50, Distribution::zipfian_default(), 1000, 64);
        let mut a = OperationGenerator::new(workload.clone(), 5);
        let mut b = OperationGenerator::new(workload, 5);
        for _ in 0..100 {
            assert_eq!(a.next_operation(), b.next_operation());
        }
    }
}
