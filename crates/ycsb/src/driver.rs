//! The multi-threaded YCSB driver.
//!
//! The paper drives Nova-LSM with 60 YCSB clients × 512 threads; this
//! in-process driver plays the same role: a configurable number of client
//! threads issue operations drawn from a [`Workload`](crate::Workload)
//! against anything implementing [`KvInterface`], while a sampler thread
//! records a throughput time series and every operation's latency lands in a
//! histogram.

use crate::stats::RunReport;
use crate::workload::{category_of, category_value, Mix, Operation, OperationGenerator, Workload};
use nova_common::histogram::{Histogram, ThroughputSeries};
use nova_common::keyspace::encode_key;
use nova_common::{Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The interface the driver exercises. Nova-LSM's client, the monolithic
/// baselines and test doubles all implement it.
pub trait KvInterface: Send + Sync {
    /// Write a key-value pair.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Write a batch of key-value pairs. The default loops over
    /// [`KvInterface::put`]; stores with a first-class batched write path
    /// (Nova-LSM's `NovaClient::put_batch`) override it so a batch pays one
    /// routing decision and group-committed logging per shard instead of a
    /// full round trip per record.
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        for (key, value) in items {
            self.put(key, value)?;
        }
        Ok(())
    }

    /// Read a key; returns `Ok(true)` if found, `Ok(false)` if absent.
    fn get(&self, key: &[u8]) -> Result<bool>;

    /// Read a batch of keys; one found-flag per key, in input order. The
    /// default loops over [`KvInterface::get`]; stores with a first-class
    /// scatter-gather read path (Nova-LSM's `NovaClient::multi_get`)
    /// override it so the batch's fabric round trips travel concurrently.
    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<bool>> {
        keys.iter().map(|key| self.get(key)).collect()
    }

    /// Scan `count` records starting at `start_key`; returns the number of
    /// records observed.
    fn scan(&self, start_key: &[u8], count: usize) -> Result<usize>;

    /// Scan up to `count` records of `[start_key, end_key)`; returns the
    /// number of records observed. The default ignores the end bound
    /// (equivalent to a `count`-limited scan); stores with real end-bounded
    /// cursors (Nova-LSM's `NovaClient::scan_range`) override it so the
    /// scan never reads past the requested interval.
    fn scan_range(&self, start_key: &[u8], _end_key: &[u8], count: usize) -> Result<usize> {
        self.scan(start_key, count)
    }

    /// Fetch up to `limit` records whose secondary key equals `secondary`;
    /// returns the number of records observed. The default fails with a
    /// terminal [`Error::Unavailable`] — only stores with a secondary
    /// index (Nova-LSM's `index_lookup_rows`) override it, so running the
    /// secondary-lookup mix against an unindexed store surfaces as errors
    /// rather than silently measuring nothing.
    fn secondary_lookup(&self, _secondary: &[u8], _limit: usize) -> Result<usize> {
        Err(Error::Unavailable("store has no secondary index".into()))
    }
}

/// How long a benchmark run lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLength {
    /// Run for a fixed wall-clock duration.
    Duration(Duration),
    /// Run until each thread has issued a fixed number of operations.
    Operations(u64),
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of client threads.
    pub threads: usize,
    /// Length of the run.
    pub run_length: RunLength,
    /// Throughput sampling interval for the time series.
    pub sample_interval: Duration,
    /// Base RNG seed (each thread derives its own).
    pub seed: u64,
    /// How many times an operation that failed with a *retryable* error
    /// (stale configuration during a migration, a transient stall) is
    /// retried before it counts as a client-visible error. The retry
    /// latency is charged to the operation's histogram entry.
    pub retry_budget: usize,
    /// Number of puts each client thread coalesces into one
    /// [`KvInterface::put_batch`] call. `1` issues every put individually
    /// (the classic YCSB behaviour). With a larger value, consecutive put
    /// operations accumulate into a batch that is flushed when full, before
    /// any read (so a thread observes its own writes), and at the end of the
    /// run; the batch's latency lands in the put histogram as one sample and
    /// every batched put counts toward the operation totals.
    pub batch_size: usize,
    /// Number of consecutive gets each client thread coalesces into one
    /// [`KvInterface::multi_get`] call — the read-side twin of
    /// `batch_size`. `1` issues every get individually. With a larger
    /// value, consecutive get operations accumulate into a batch that is
    /// flushed when full, before any put or scan (preserving rough program
    /// order), and at the end of the run; the batch's latency lands in the
    /// get histogram as one sample and every batched get counts toward the
    /// operation totals.
    pub read_batch_size: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            threads: 4,
            run_length: RunLength::Duration(Duration::from_secs(5)),
            sample_interval: Duration::from_millis(250),
            seed: 1,
            retry_budget: 8,
            batch_size: 1,
            read_batch_size: 1,
        }
    }
}

/// Run `op` under the driver's bounded retry policy: transient failures (a
/// migration's handoff window, a write stall) are retried up to
/// `retry_budget` times with a linear 100µs×attempt backoff rather than
/// surfacing as client errors. The one retry policy every driver path —
/// single operations, put batches, read batches — goes through.
fn with_retries<T>(retry_budget: usize, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempts = 0usize;
    loop {
        match op() {
            Err(e) if e.is_retryable() && attempts < retry_budget => {
                attempts += 1;
                std::thread::sleep(Duration::from_micros(100 * attempts as u64));
            }
            other => return other,
        }
    }
}

/// Flush a pending batch (puts or gets) with the driver's bounded retry
/// policy, recording the batch latency as one histogram sample. Returns
/// `(operations, errors)` to charge to the thread's counters: a failed
/// batch fails every operation in it.
fn flush_pending<P>(
    pending: &mut Vec<P>,
    hist: &mut Histogram,
    retry_budget: usize,
    mut flush: impl FnMut(&[P]) -> Result<()>,
) -> (u64, u64) {
    if pending.is_empty() {
        return (0, 0);
    }
    let n = pending.len() as u64;
    let start = Instant::now();
    let outcome = with_retries(retry_budget, || flush(pending.as_slice()));
    hist.record(start.elapsed());
    pending.clear();
    (n, if outcome.is_err() { n } else { 0 })
}

/// Flush a pending put batch through [`KvInterface::put_batch`].
fn flush_batch<S: KvInterface + ?Sized>(
    store: &S,
    pending: &mut Vec<(Vec<u8>, Vec<u8>)>,
    put_hist: &mut Histogram,
    retry_budget: usize,
) -> (u64, u64) {
    flush_pending(pending, put_hist, retry_budget, |items| store.put_batch(items))
}

/// Flush a pending get batch through [`KvInterface::multi_get`].
fn flush_read_batch<S: KvInterface + ?Sized>(
    store: &S,
    pending: &mut Vec<Vec<u8>>,
    get_hist: &mut Histogram,
    retry_budget: usize,
) -> (u64, u64) {
    flush_pending(pending, get_hist, retry_budget, |keys| {
        store.multi_get(keys).map(|_| ())
    })
}

/// Load the database: write every key in `[0, num_keys)` once, split across
/// `threads` loader threads.
pub fn load<S: KvInterface + ?Sized>(
    store: &S,
    num_keys: u64,
    value_size: usize,
    threads: usize,
) -> Result<()> {
    let threads = threads.max(1);
    let value = vec![b'v'; value_size];
    let failed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let value = &value;
            let failed = &failed;
            scope.spawn(move || {
                let mut key = t as u64;
                while key < num_keys {
                    if store.put(&encode_key(key), value).is_err() {
                        failed.store(true, Ordering::SeqCst);
                        return;
                    }
                    key += threads as u64;
                }
            });
        }
    });
    if failed.load(Ordering::SeqCst) {
        return Err(Error::Unavailable("load phase failed".into()));
    }
    Ok(())
}

/// Run a workload against a store and report throughput and latency.
pub fn run<S: KvInterface + ?Sized>(store: &S, workload: &Workload, config: &DriverConfig) -> RunReport {
    let threads = config.threads.max(1);
    let completed_ops = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    let mut series = ThroughputSeries::new();
    let mut histograms: Vec<(Histogram, Histogram, Histogram)> = Vec::new();
    let mut errors = 0u64;

    std::thread::scope(|scope| {
        // Client threads.
        let mut handles = Vec::new();
        for t in 0..threads {
            let completed = Arc::clone(&completed_ops);
            let stop = Arc::clone(&stop);
            let workload = workload.clone();
            let seed = config.seed.wrapping_mul(1_000_003).wrapping_add(t as u64);
            let run_length = config.run_length;
            let retry_budget = config.retry_budget;
            let batch_size = config.batch_size.max(1);
            let read_batch_size = config.read_batch_size.max(1);
            // Workload E's short scans carry a natural end bound (the YCSB
            // keyspace is dense, so `count` records span `count` keys);
            // issue them through the end-bounded cursor path so a store
            // with real range cursors never reads past the interval.
            let bounded_scans = matches!(workload.mix, Mix::E);
            // The secondary-lookup mix writes values whose first bytes are
            // the key's category code, so a value-projecting index over the
            // prefix has something to find.
            let category_values = matches!(workload.mix, Mix::Sl50);
            handles.push(scope.spawn(move || {
                let mut generator = OperationGenerator::new(workload, seed);
                let mut get_hist = Histogram::new();
                let mut put_hist = Histogram::new();
                let mut scan_hist = Histogram::new();
                let mut errors = 0u64;
                let mut ops_done = 0u64;
                let mut pending: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(batch_size);
                let mut pending_reads: Vec<Vec<u8>> = Vec::with_capacity(read_batch_size);
                loop {
                    match run_length {
                        RunLength::Duration(d) => {
                            if start.elapsed() >= d {
                                break;
                            }
                        }
                        RunLength::Operations(n) => {
                            if ops_done >= n {
                                break;
                            }
                        }
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let op = generator.next_operation();
                    if batch_size > 1 {
                        if let Operation::Put { key, value_size } = &op {
                            // A buffered put after buffered reads: flush the
                            // reads first to preserve rough program order.
                            let (n, e) =
                                flush_read_batch(store, &mut pending_reads, &mut get_hist, retry_budget);
                            ops_done += n;
                            errors += e;
                            completed.fetch_add(n, Ordering::Relaxed);
                            pending.push((
                                encode_key(*key),
                                if category_values {
                                    category_value(*key, *value_size)
                                } else {
                                    vec![b'w'; *value_size]
                                },
                            ));
                            if pending.len() >= batch_size {
                                let (n, e) = flush_batch(store, &mut pending, &mut put_hist, retry_budget);
                                ops_done += n;
                                errors += e;
                                completed.fetch_add(n, Ordering::Relaxed);
                            }
                            continue;
                        }
                        // A read is next: flush buffered puts first so the
                        // thread observes its own writes.
                        let (n, e) = flush_batch(store, &mut pending, &mut put_hist, retry_budget);
                        ops_done += n;
                        errors += e;
                        completed.fetch_add(n, Ordering::Relaxed);
                    }
                    if read_batch_size > 1 {
                        if let Operation::Get { key } = &op {
                            // Consecutive gets coalesce into one multi_get,
                            // the way batch_size coalesces puts.
                            pending_reads.push(encode_key(*key));
                            if pending_reads.len() >= read_batch_size {
                                let (n, e) =
                                    flush_read_batch(store, &mut pending_reads, &mut get_hist, retry_budget);
                                ops_done += n;
                                errors += e;
                                completed.fetch_add(n, Ordering::Relaxed);
                            }
                            continue;
                        }
                        // A put or scan is next: flush buffered reads first.
                        let (n, e) = flush_read_batch(store, &mut pending_reads, &mut get_hist, retry_budget);
                        ops_done += n;
                        errors += e;
                        completed.fetch_add(n, Ordering::Relaxed);
                    }
                    let op_start = Instant::now();
                    let outcome = with_retries(retry_budget, || match &op {
                        Operation::Get { key } => store.get(&encode_key(*key)).map(|_| ()),
                        Operation::Put { key, value_size } => {
                            let value = if category_values {
                                category_value(*key, *value_size)
                            } else {
                                vec![b'w'; *value_size]
                            };
                            store.put(&encode_key(*key), &value)
                        }
                        Operation::Scan { start_key, count } => {
                            if bounded_scans {
                                store
                                    .scan_range(
                                        &encode_key(*start_key),
                                        &encode_key(start_key.saturating_add(*count as u64)),
                                        *count,
                                    )
                                    .map(|_| ())
                            } else {
                                store.scan(&encode_key(*start_key), *count).map(|_| ())
                            }
                        }
                        Operation::SecondaryLookup { category, limit } => store
                            .secondary_lookup(&category_of(*category), *limit)
                            .map(|_| ()),
                    });
                    let latency = op_start.elapsed();
                    match &op {
                        Operation::Get { .. } => get_hist.record(latency),
                        Operation::Put { .. } => put_hist.record(latency),
                        Operation::Scan { .. } | Operation::SecondaryLookup { .. } => {
                            scan_hist.record(latency)
                        }
                    }
                    if outcome.is_err() {
                        errors += 1;
                    }
                    ops_done += 1;
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                // Flush whatever the final iterations buffered.
                let (n, e) = flush_batch(store, &mut pending, &mut put_hist, retry_budget);
                errors += e;
                completed.fetch_add(n, Ordering::Relaxed);
                let (n, e) = flush_read_batch(store, &mut pending_reads, &mut get_hist, retry_budget);
                errors += e;
                completed.fetch_add(n, Ordering::Relaxed);
                (get_hist, put_hist, scan_hist, errors)
            }));
        }

        // Sampler: builds the throughput-over-time series.
        let sampler = {
            let completed = Arc::clone(&completed_ops);
            let stop = Arc::clone(&stop);
            let interval = config.sample_interval;
            scope.spawn(move || {
                let mut series = ThroughputSeries::new();
                let mut last_count = 0u64;
                let mut last_time = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    let now = Instant::now();
                    let count = completed.load(Ordering::Relaxed);
                    let elapsed = now.duration_since(last_time).as_secs_f64();
                    if elapsed > 0.0 {
                        series.push(
                            start.elapsed().as_secs_f64(),
                            (count - last_count) as f64 / elapsed,
                        );
                    }
                    last_count = count;
                    last_time = now;
                }
                series
            })
        };

        for handle in handles {
            let (g, p, s, e) = handle.join().expect("client thread panicked");
            histograms.push((g, p, s));
            errors += e;
        }
        stop.store(true, Ordering::SeqCst);
        series = sampler.join().expect("sampler thread panicked");
    });

    let elapsed = start.elapsed();
    let mut gets = Histogram::new();
    let mut puts = Histogram::new();
    let mut scans = Histogram::new();
    for (g, p, s) in &histograms {
        gets.merge(g);
        puts.merge(p);
        scans.merge(s);
    }
    RunReport::new(
        workload.label(),
        completed_ops.load(Ordering::SeqCst),
        errors,
        elapsed,
        gets,
        puts,
        scans,
        series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Distribution, Mix};
    use parking_lot::RwLock;
    use std::collections::BTreeMap;

    /// An in-memory store used to exercise the driver itself.
    #[derive(Default)]
    struct MapStore {
        data: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
    }

    impl KvInterface for MapStore {
        fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
            self.data.write().insert(key.to_vec(), value.to_vec());
            Ok(())
        }

        fn get(&self, key: &[u8]) -> Result<bool> {
            Ok(self.data.read().contains_key(key))
        }

        fn scan(&self, start_key: &[u8], count: usize) -> Result<usize> {
            Ok(self.data.read().range(start_key.to_vec()..).take(count).count())
        }
    }

    #[test]
    fn load_writes_every_key() {
        let store = MapStore::default();
        load(&store, 1_000, 16, 4).unwrap();
        assert_eq!(store.data.read().len(), 1_000);
    }

    #[test]
    fn run_by_operation_count_reports_throughput_and_latency() {
        let store = MapStore::default();
        load(&store, 500, 16, 2).unwrap();
        let workload = Workload::new(Mix::Rw50, Distribution::zipfian_default(), 500, 16);
        let config = DriverConfig {
            threads: 3,
            run_length: RunLength::Operations(500),
            sample_interval: Duration::from_millis(10),
            seed: 11,
            retry_budget: 2,
            batch_size: 1,
            read_batch_size: 1,
        };
        let report = run(&store, &workload, &config);
        assert_eq!(report.operations, 1_500);
        assert_eq!(report.errors, 0);
        assert!(report.throughput_ops_per_sec() > 0.0);
        assert!(report.gets.count() > 0);
        assert!(report.puts.count() > 0);
        assert_eq!(report.scans.count(), 0);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn batched_puts_count_every_operation_and_stay_readable() {
        use std::sync::atomic::AtomicU64;

        /// Counts put_batch calls so the test can prove batching happened.
        #[derive(Default)]
        struct BatchCountingStore {
            inner: MapStore,
            batch_calls: AtomicU64,
            batched_puts: AtomicU64,
        }

        impl KvInterface for BatchCountingStore {
            fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
                self.inner.put(key, value)
            }
            fn get(&self, key: &[u8]) -> Result<bool> {
                self.inner.get(key)
            }
            fn scan(&self, start_key: &[u8], count: usize) -> Result<usize> {
                self.inner.scan(start_key, count)
            }
            fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
                self.batch_calls.fetch_add(1, Ordering::Relaxed);
                self.batched_puts.fetch_add(items.len() as u64, Ordering::Relaxed);
                self.inner.put_batch(items)
            }
        }

        let store = BatchCountingStore::default();
        let workload = Workload::new(Mix::Rw50, Distribution::Uniform, 400, 8);
        let config = DriverConfig {
            threads: 2,
            run_length: RunLength::Operations(400),
            sample_interval: Duration::from_millis(50),
            seed: 9,
            retry_budget: 2,
            batch_size: 8,
            read_batch_size: 1,
        };
        let report = run(&store, &workload, &config);
        assert_eq!(report.errors, 0);
        assert!(report.operations >= 800, "batched puts must count as operations");
        let calls = store.batch_calls.load(Ordering::Relaxed);
        let batched = store.batched_puts.load(Ordering::Relaxed);
        assert!(calls > 0, "batch_size > 1 must route puts through put_batch");
        assert!(
            batched > calls,
            "batches must coalesce more than one put on average ({batched} puts in {calls} calls)"
        );
        assert_eq!(report.puts.count(), calls, "one histogram sample per batch");
        assert!(!store.inner.data.read().is_empty());
    }

    #[test]
    fn batched_reads_route_through_multi_get_and_count_every_operation() {
        use std::sync::atomic::AtomicU64;

        /// Counts multi_get calls so the test can prove read batching
        /// happened.
        #[derive(Default)]
        struct ReadBatchCountingStore {
            inner: MapStore,
            batch_calls: AtomicU64,
            batched_gets: AtomicU64,
        }

        impl KvInterface for ReadBatchCountingStore {
            fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
                self.inner.put(key, value)
            }
            fn get(&self, key: &[u8]) -> Result<bool> {
                self.inner.get(key)
            }
            fn scan(&self, start_key: &[u8], count: usize) -> Result<usize> {
                self.inner.scan(start_key, count)
            }
            fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<bool>> {
                self.batch_calls.fetch_add(1, Ordering::Relaxed);
                self.batched_gets.fetch_add(keys.len() as u64, Ordering::Relaxed);
                self.inner.multi_get(keys)
            }
        }

        let store = ReadBatchCountingStore::default();
        load(&store, 400, 8, 2).unwrap();
        let workload = Workload::new(Mix::Rw50, Distribution::Uniform, 400, 8);
        let config = DriverConfig {
            threads: 2,
            run_length: RunLength::Operations(400),
            sample_interval: Duration::from_millis(50),
            seed: 13,
            retry_budget: 2,
            batch_size: 1,
            read_batch_size: 8,
        };
        let report = run(&store, &workload, &config);
        assert_eq!(report.errors, 0);
        assert!(report.operations >= 800, "batched gets must count as operations");
        let calls = store.batch_calls.load(Ordering::Relaxed);
        let batched = store.batched_gets.load(Ordering::Relaxed);
        assert!(calls > 0, "read_batch_size > 1 must route gets through multi_get");
        assert!(
            batched > calls,
            "read batches must coalesce more than one get on average ({batched} gets in {calls} calls)"
        );
        assert_eq!(report.gets.count(), calls, "one histogram sample per read batch");
    }

    #[test]
    fn workload_e_routes_scans_through_the_bounded_range_path() {
        use std::sync::atomic::AtomicU64;

        #[derive(Default)]
        struct RangeScanCountingStore {
            inner: MapStore,
            range_scans: AtomicU64,
        }

        impl KvInterface for RangeScanCountingStore {
            fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
                self.inner.put(key, value)
            }
            fn get(&self, key: &[u8]) -> Result<bool> {
                self.inner.get(key)
            }
            fn scan(&self, start_key: &[u8], count: usize) -> Result<usize> {
                self.inner.scan(start_key, count)
            }
            fn scan_range(&self, start_key: &[u8], end_key: &[u8], count: usize) -> Result<usize> {
                assert!(start_key < end_key, "workload E must pass a real end bound");
                self.range_scans.fetch_add(1, Ordering::Relaxed);
                self.inner.scan(start_key, count)
            }
        }

        let store = RangeScanCountingStore::default();
        load(&store, 300, 8, 2).unwrap();
        let workload = Workload::workload_e(300, 8);
        let config = DriverConfig {
            threads: 2,
            run_length: RunLength::Operations(200),
            sample_interval: Duration::from_millis(50),
            seed: 5,
            retry_budget: 2,
            batch_size: 1,
            read_batch_size: 1,
        };
        let report = run(&store, &workload, &config);
        assert_eq!(report.errors, 0);
        assert!(report.scans.count() > 0, "workload E is scan-heavy");
        assert_eq!(
            store.range_scans.load(Ordering::Relaxed),
            report.scans.count(),
            "every workload-E scan must travel the end-bounded path"
        );
    }

    #[test]
    fn secondary_lookup_mix_routes_through_the_hook_with_category_values() {
        use std::sync::atomic::AtomicU64;

        /// Counts secondary lookups and checks every put carries a valid
        /// category prefix.
        #[derive(Default)]
        struct IndexedStore {
            inner: MapStore,
            lookups: AtomicU64,
        }

        impl KvInterface for IndexedStore {
            fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
                let prefix = std::str::from_utf8(&value[..crate::workload::CATEGORY_WIDTH])
                    .expect("category prefix must be ascii digits");
                let category: u64 = prefix.parse().expect("category prefix must parse");
                assert!(category < crate::workload::NUM_CATEGORIES);
                self.inner.put(key, value)
            }
            fn get(&self, key: &[u8]) -> Result<bool> {
                self.inner.get(key)
            }
            fn scan(&self, start_key: &[u8], count: usize) -> Result<usize> {
                self.inner.scan(start_key, count)
            }
            fn secondary_lookup(&self, secondary: &[u8], limit: usize) -> Result<usize> {
                assert_eq!(secondary.len(), crate::workload::CATEGORY_WIDTH);
                self.lookups.fetch_add(1, Ordering::Relaxed);
                let data = self.inner.data.read();
                Ok(data
                    .values()
                    .filter(|v| v.starts_with(secondary))
                    .take(limit)
                    .count())
            }
        }

        let store = IndexedStore::default();
        let workload = Workload::new(Mix::Sl50, Distribution::Uniform, 400, 16);
        let config = DriverConfig {
            threads: 2,
            run_length: RunLength::Operations(300),
            sample_interval: Duration::from_millis(50),
            seed: 17,
            retry_budget: 2,
            batch_size: 1,
            read_batch_size: 1,
        };
        let report = run(&store, &workload, &config);
        assert_eq!(report.errors, 0);
        let lookups = store.lookups.load(Ordering::Relaxed);
        assert!(lookups > 0, "SL50 must issue secondary lookups");
        assert_eq!(
            report.scans.count(),
            lookups,
            "lookup latencies land in the scan histogram"
        );

        // The default hook is a terminal error: the mix against an
        // unindexed store counts every lookup as an error.
        let plain = MapStore::default();
        let report = run(&plain, &workload, &config);
        assert!(report.errors > 0, "unindexed stores must surface lookup errors");
    }

    #[test]
    fn run_by_duration_terminates() {
        let store = MapStore::default();
        let workload = Workload::new(Mix::Sw50, Distribution::Uniform, 200, 8);
        let config = DriverConfig {
            threads: 2,
            run_length: RunLength::Duration(Duration::from_millis(200)),
            sample_interval: Duration::from_millis(50),
            seed: 3,
            retry_budget: 2,
            batch_size: 1,
            read_batch_size: 1,
        };
        let start = Instant::now();
        let report = run(&store, &workload, &config);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(report.operations > 0);
        assert!(report.scans.count() > 0, "SW50 must issue scans");
        assert!(!report.series.samples().is_empty());
    }
}
