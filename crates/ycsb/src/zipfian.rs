//! A Zipfian key chooser, following the YCSB / Gray et al. rejection-free
//! construction used by the original YCSB `ZipfianGenerator`.
//!
//! The paper uses "the default Zipfian constant 0.99, resulting in 85% of
//! requests to reference 10% of keys" (Section 8.1) and sweeps the constant
//! (0.27, 0.73, 0.99) in the skew experiment (Figure 12).

use rand::Rng;

/// Generates items in `[0, n)` with a Zipfian popularity distribution.
///
/// Item 0 is the most popular. Callers typically scramble the output (YCSB's
/// `ScrambledZipfianGenerator`) when they want the popular keys spread across
/// the keyspace; Nova-LSM's experiments keep the natural order so the hottest
/// keys land in the first range (that is exactly what makes the first LTC the
/// bottleneck in Section 8.2.5).
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // For the item counts used by the harness (≤ a few million) the direct
    // sum is fast enough and exact.
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Zipfian {
    /// Create a generator over `items` items with skew `theta` (the YCSB
    /// "zipfian constant"). `theta` must be in `[0, 1)`.
    pub fn new(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian needs at least one item");
        assert!((0.0..1.0).contains(&theta), "zipfian constant must be in [0, 1)");
        let zetan = zeta(items, theta);
        let zeta2theta = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            items,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// The YCSB default (constant 0.99).
    pub fn ycsb_default(items: u64) -> Self {
        Self::new(items, 0.99)
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The skew constant.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw the next item (0 is the hottest).
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.items as f64) * spread) as u64
    }

    /// The fraction of probability mass covered by the `top` most popular
    /// items (used to sanity-check the "85% of requests reference 10% of
    /// keys" claim).
    pub fn mass_of_top(&self, top: u64) -> f64 {
        zeta(top.min(self.items), self.theta) / self.zetan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn values_are_in_range_and_skewed() {
        let z = Zipfian::ycsb_default(10_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; 10_000];
        for _ in 0..200_000 {
            let v = z.next(&mut rng);
            assert!(v < 10_000);
            counts[v as usize] += 1;
        }
        // Item 0 is by far the most popular.
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max);
        // Roughly 85% of requests hit the top 10% of items (paper, Section 8.1).
        let top10: u64 = counts[..1000].iter().sum();
        let frac = top10 as f64 / 200_000.0;
        assert!(
            frac > 0.75 && frac < 0.95,
            "top-10% mass {frac} out of expected band"
        );
    }

    #[test]
    fn lower_constant_is_less_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let strong = Zipfian::new(10_000, 0.99);
        let weak = Zipfian::new(10_000, 0.27);
        let count_hot = |z: &Zipfian, rng: &mut StdRng| {
            let mut hot = 0;
            for _ in 0..50_000 {
                if z.next(rng) < 1000 {
                    hot += 1;
                }
            }
            hot
        };
        let strong_hot = count_hot(&strong, &mut rng);
        let weak_hot = count_hot(&weak, &mut rng);
        assert!(
            strong_hot > weak_hot,
            "theta=0.99 must be more skewed than theta=0.27"
        );
        // Zipf 0.73 directs roughly half the requests to the top 10% (the
        // paper quotes 53%).
        let mid = Zipfian::new(10_000, 0.73);
        let mid_hot = count_hot(&mid, &mut rng) as f64 / 50_000.0;
        assert!(
            mid_hot > 0.4 && mid_hot < 0.65,
            "theta=0.73 hot fraction {mid_hot}"
        );
    }

    #[test]
    fn analytic_mass_matches_sampling() {
        let z = Zipfian::ycsb_default(100_000);
        let analytic = z.mass_of_top(10_000);
        assert!(
            analytic > 0.75 && analytic < 0.95,
            "analytic top-10% mass {analytic}"
        );
        assert_eq!(z.items(), 100_000);
        assert!((z.theta() - 0.99).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_items_is_rejected() {
        let _ = Zipfian::new(0, 0.5);
    }

    #[test]
    #[should_panic]
    fn theta_of_one_is_rejected() {
        let _ = Zipfian::new(10, 1.0);
    }
}
