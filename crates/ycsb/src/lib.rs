//! # nova-ycsb
//!
//! A YCSB-style workload generator and multi-threaded driver used by the
//! Nova-LSM experiment harness (Section 8.1 of the paper): the RW50 / SW50 /
//! W100 / R100 operation mixes of Table 3, Uniform and Zipfian key choosers
//! (with the YCSB default constant 0.99), a database loader, and per-run
//! reports containing throughput, a throughput-over-time series and
//! average/p95/p99 latencies.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod stats;
pub mod workload;
pub mod zipfian;

pub use driver::{load, run, DriverConfig, KvInterface, RunLength};
pub use stats::RunReport;
pub use workload::{
    category_of, category_value, Distribution, Mix, Operation, OperationGenerator, Workload, CATEGORY_WIDTH,
    NUM_CATEGORIES,
};

/// The well-known name of the secondary index the secondary-lookup mix and
/// the `fig28_secondary` experiment query: a [`CATEGORY_WIDTH`]-byte slice
/// projection at offset 0 (the category prefix written by
/// [`category_value`]).
pub const SECONDARY_INDEX_NAME: &str = "ycsb_category";
pub use zipfian::Zipfian;
