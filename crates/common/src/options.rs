//! Per-operation option structs for the typed client API.
//!
//! Cluster-wide knobs ([`crate::config::ClusterConfig`]) set the defaults;
//! these structs let a single operation override the ones that are a
//! per-request decision — block-cache admission for a one-off analytical
//! scan, readahead width for a cursor that knows its chunk size, group
//! commit for a batch that prefers per-record logging. Every field has a
//! conservative default, so `ReadOptions::default()` /
//! `WriteOptions::default()` behave exactly like the pre-options API.

/// Options carried by read operations (`get`, `multi_get`, range scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOptions {
    /// Whether data blocks fetched from a StoC on behalf of this operation
    /// are offered to the LTC's block cache. `false` is the classic
    /// "don't pollute the cache" hint for one-off analytical scans: cached
    /// blocks are still *served*, but misses are not inserted.
    pub fill_cache: bool,
    /// Readahead window for table iterators, in data blocks past the
    /// cursor. `None` derives the width from the StoC client's configured
    /// I/O parallelism (the pre-options behaviour); `Some(0)` disables
    /// readahead; `Some(n)` prefetches exactly `n` blocks per window.
    pub readahead: Option<usize>,
    /// How many entries a streaming scan cursor pulls per chunk. Each chunk
    /// is one routed, epoch-validated request; larger chunks amortize
    /// routing, smaller chunks bound the staleness window between chunks.
    /// Consumed by the client-side cursor only — the LTC/engine scan
    /// methods take their entry limit as an explicit parameter.
    pub limit: usize,
}

/// The chunk size a [`ReadOptions::default`] scan cursor pulls per request.
pub const DEFAULT_SCAN_CHUNK: usize = 128;

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            fill_cache: true,
            readahead: None,
            limit: DEFAULT_SCAN_CHUNK,
        }
    }
}

impl ReadOptions {
    /// The "don't pollute the cache" profile for one-off analytical scans:
    /// cache hits are still served, but misses are not admitted.
    pub fn no_fill() -> Self {
        ReadOptions {
            fill_cache: false,
            ..Default::default()
        }
    }

    /// Set the scan-cursor chunk size (clamped to at least 1).
    pub fn with_chunk(mut self, limit: usize) -> Self {
        self.limit = limit.max(1);
        self
    }

    /// Set an explicit readahead window (`0` disables readahead).
    pub fn with_readahead(mut self, blocks: usize) -> Self {
        self.readahead = Some(blocks);
        self
    }

    /// The effective readahead width given the I/O parallelism the client
    /// was configured with and a per-call upper bound. The automatic width
    /// follows the parallelism (serial clients fetch on demand — a batch of
    /// one per block gains nothing); explicit widths are clamped to the
    /// same cap, which bounds how many prefetched blocks an iterator holds
    /// in memory at once.
    pub fn effective_readahead(&self, io_parallelism: usize, cap: usize) -> usize {
        match self.readahead {
            Some(width) => width.min(cap),
            None => match io_parallelism {
                0 | 1 => 0,
                parallelism => parallelism.min(cap),
            },
        }
    }
}

/// Options carried by batched write operations (`put_batch` and the
/// engine-level `write_batch_with`). Single-record `put`/`delete` always
/// follow the cluster-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOptions {
    /// Whether this batch's log records may be coalesced into group-commit
    /// writes (the cluster's `group_commit_*` knobs bound the group).
    /// `false` forces per-record logging for this batch only — the
    /// pre-group-commit protocol, one log write per replica per record.
    pub group_commit: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions { group_commit: true }
    }
}

impl WriteOptions {
    /// The per-record-logging profile (no group-commit coalescing).
    pub fn no_group_commit() -> Self {
        WriteOptions { group_commit: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_pre_options_behaviour() {
        let r = ReadOptions::default();
        assert!(r.fill_cache);
        assert_eq!(r.readahead, None);
        assert_eq!(r.limit, DEFAULT_SCAN_CHUNK);
        assert!(WriteOptions::default().group_commit);
        assert!(!WriteOptions::no_group_commit().group_commit);
        assert!(!ReadOptions::no_fill().fill_cache);
    }

    #[test]
    fn effective_readahead_follows_parallelism_unless_explicit() {
        let auto = ReadOptions::default();
        assert_eq!(auto.effective_readahead(1, 8), 0, "serial I/O reads on demand");
        assert_eq!(auto.effective_readahead(4, 8), 4);
        assert_eq!(auto.effective_readahead(32, 8), 8, "auto width is capped");
        let explicit = ReadOptions::default().with_readahead(3);
        assert_eq!(explicit.effective_readahead(1, 8), 3, "explicit width wins");
        let off = ReadOptions::default().with_readahead(0);
        assert_eq!(off.effective_readahead(16, 8), 0);
        let huge = ReadOptions::default().with_readahead(1_000_000);
        assert_eq!(
            huge.effective_readahead(1, 8),
            8,
            "explicit width is still capped"
        );
    }

    #[test]
    fn builders_clamp_and_compose() {
        let r = ReadOptions::no_fill().with_chunk(0).with_readahead(2);
        assert_eq!(r.limit, 1);
        assert_eq!(r.readahead, Some(2));
        assert!(!r.fill_cache);
    }
}
