//! Keyspace partitioning helpers.
//!
//! Nova-LSM range-partitions the application keyspace across η × ω ranges
//! (Section 3). YCSB keys in this reproduction are `0..num_keys` formatted as
//! fixed-width zero-padded decimal strings so that bytewise ordering equals
//! numeric ordering; the helpers here convert between numeric keys, encoded
//! keys, and range assignments.

use crate::types::RangeId;
use serde::{Deserialize, Serialize};

/// Width of the zero-padded decimal key encoding. 20 digits is enough for any
/// `u64` key.
pub const KEY_WIDTH: usize = 20;

/// Encode a numeric key as a fixed-width zero-padded decimal string.
pub fn encode_key(k: u64) -> Vec<u8> {
    format!("{k:0width$}", width = KEY_WIDTH).into_bytes()
}

/// Decode a fixed-width key back to its numeric form, if well-formed.
pub fn decode_key(key: &[u8]) -> Option<u64> {
    std::str::from_utf8(key).ok()?.parse().ok()
}

/// A numeric *lower bound* for a key that may carry a non-numeric suffix:
/// the numeric value of its first [`KEY_WIDTH`] bytes. Scan cursors resume
/// at the bytewise successor `key ++ 0x00`, which no longer decodes as a
/// whole — but every key at or after it is numerically at least the
/// prefix's value, which is exactly what index pruning needs.
pub fn decode_key_lower_bound(key: &[u8]) -> Option<u64> {
    decode_key(key).or_else(|| decode_key(key.get(..KEY_WIDTH)?))
}

/// A half-open interval `[lower, upper)` of the numeric keyspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyInterval {
    /// Inclusive lower bound.
    pub lower: u64,
    /// Exclusive upper bound.
    pub upper: u64,
}

impl KeyInterval {
    /// Construct an interval; `lower` must not exceed `upper`.
    pub fn new(lower: u64, upper: u64) -> Self {
        assert!(
            lower <= upper,
            "interval lower bound {lower} exceeds upper bound {upper}"
        );
        KeyInterval { lower, upper }
    }

    /// The whole `u64` keyspace.
    pub fn all() -> Self {
        KeyInterval {
            lower: 0,
            upper: u64::MAX,
        }
    }

    /// True if `key` falls inside the interval.
    pub fn contains(&self, key: u64) -> bool {
        key >= self.lower && key < self.upper
    }

    /// Number of keys covered (saturating).
    pub fn len(&self) -> u64 {
        self.upper.saturating_sub(self.lower)
    }

    /// True if the interval covers no keys.
    pub fn is_empty(&self) -> bool {
        self.lower >= self.upper
    }

    /// True if the two intervals share at least one key.
    pub fn overlaps(&self, other: &KeyInterval) -> bool {
        self.lower < other.upper && other.lower < self.upper
    }
}

/// The partitioning of a numeric keyspace `[0, num_keys)` into `n` contiguous
/// ranges of (almost) equal size, each identified by a [`RangeId`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyspacePartition {
    num_keys: u64,
    intervals: Vec<KeyInterval>,
}

impl KeyspacePartition {
    /// Partition `[0, num_keys)` into `num_ranges` contiguous intervals.
    pub fn uniform(num_keys: u64, num_ranges: usize) -> Self {
        assert!(num_ranges > 0, "at least one range is required");
        assert!(num_keys > 0, "keyspace must be non-empty");
        let n = num_ranges as u64;
        let base = num_keys / n;
        let extra = num_keys % n;
        let mut intervals = Vec::with_capacity(num_ranges);
        let mut lower = 0u64;
        for i in 0..n {
            let size = base + if i < extra { 1 } else { 0 };
            intervals.push(KeyInterval::new(lower, lower + size));
            lower += size;
        }
        KeyspacePartition { num_keys, intervals }
    }

    /// Number of ranges.
    pub fn num_ranges(&self) -> usize {
        self.intervals.len()
    }

    /// Total number of keys.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// The interval owned by `range`.
    pub fn interval(&self, range: RangeId) -> KeyInterval {
        self.intervals[range.0 as usize]
    }

    /// All intervals in range-id order.
    pub fn intervals(&self) -> &[KeyInterval] {
        &self.intervals
    }

    /// The range that owns numeric key `key`. Keys at or beyond `num_keys`
    /// map to the last range.
    pub fn range_of(&self, key: u64) -> RangeId {
        // Binary search over contiguous intervals.
        let mut lo = 0usize;
        let mut hi = self.intervals.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if key >= self.intervals[mid].lower {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        RangeId(lo as u32)
    }

    /// The range that owns an encoded key.
    pub fn range_of_encoded(&self, key: &[u8]) -> RangeId {
        match decode_key(key) {
            Some(k) => self.range_of(k),
            None => RangeId((self.intervals.len() - 1) as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn key_encoding_preserves_order_and_round_trips() {
        let a = encode_key(42);
        let b = encode_key(1000);
        assert!(a < b);
        assert_eq!(decode_key(&a), Some(42));
        assert_eq!(decode_key(&b), Some(1000));
        assert_eq!(decode_key(b"not-a-number"), None);
        assert_eq!(a.len(), KEY_WIDTH);
    }

    #[test]
    fn lower_bound_decoding_tolerates_cursor_resume_suffixes() {
        let mut resume = encode_key(42);
        resume.push(0);
        assert_eq!(decode_key(&resume), None, "the suffix breaks a whole-key decode");
        assert_eq!(decode_key_lower_bound(&resume), Some(42));
        assert_eq!(decode_key_lower_bound(&encode_key(7)), Some(7));
        assert_eq!(decode_key_lower_bound(b"short"), None);
        assert_eq!(decode_key_lower_bound(b"not-a-number-at-all-x"), None);
    }

    #[test]
    fn interval_basics() {
        let i = KeyInterval::new(10, 20);
        assert!(i.contains(10));
        assert!(!i.contains(20));
        assert_eq!(i.len(), 10);
        assert!(!i.is_empty());
        assert!(i.overlaps(&KeyInterval::new(19, 30)));
        assert!(!i.overlaps(&KeyInterval::new(20, 30)));
        assert!(KeyInterval::new(5, 5).is_empty());
    }

    #[test]
    #[should_panic]
    fn interval_rejects_inverted_bounds() {
        let _ = KeyInterval::new(5, 4);
    }

    #[test]
    fn uniform_partition_covers_keyspace_without_gaps() {
        let p = KeyspacePartition::uniform(1003, 10);
        assert_eq!(p.num_ranges(), 10);
        let mut covered = 0;
        let mut prev_upper = 0;
        for (i, iv) in p.intervals().iter().enumerate() {
            assert_eq!(iv.lower, prev_upper, "gap before range {i}");
            covered += iv.len();
            prev_upper = iv.upper;
        }
        assert_eq!(covered, 1003);
        assert_eq!(prev_upper, 1003);
        // The remainder is spread across the first ranges.
        assert_eq!(p.interval(RangeId(0)).len(), 101);
        assert_eq!(p.interval(RangeId(9)).len(), 100);
    }

    #[test]
    fn range_of_matches_interval_membership() {
        let p = KeyspacePartition::uniform(100, 4);
        for k in 0..100 {
            let r = p.range_of(k);
            assert!(p.interval(r).contains(k), "key {k} assigned to wrong range {r}");
        }
        // Out-of-range keys map to the last range.
        assert_eq!(p.range_of(1000), RangeId(3));
        assert_eq!(p.range_of_encoded(&encode_key(55)), p.range_of(55));
        assert_eq!(p.range_of_encoded(b"garbage"), RangeId(3));
    }

    proptest! {
        #[test]
        fn prop_partition_assignment_is_consistent(
            num_keys in 1u64..1_000_000,
            num_ranges in 1usize..64,
            key in 0u64..1_000_000,
        ) {
            let p = KeyspacePartition::uniform(num_keys, num_ranges);
            let r = p.range_of(key.min(num_keys - 1));
            prop_assert!(p.interval(r).contains(key.min(num_keys - 1)));
        }

        #[test]
        fn prop_encoding_preserves_numeric_order(a in any::<u64>(), b in any::<u64>()) {
            let ea = encode_key(a);
            let eb = encode_key(b);
            prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
        }
    }
}
