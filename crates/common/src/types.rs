//! Core value types shared by every Nova-LSM component.
//!
//! Nova-LSM, like LevelDB, distinguishes *user keys* (arbitrary byte strings
//! chosen by the application) from *internal keys* (user key + sequence
//! number + value type). Internal keys order entries so that the most recent
//! version of a user key sorts first among entries with equal user keys.

use bytes::Bytes;
use std::cmp::Ordering;
use std::fmt;

/// A user key: an arbitrary byte string.
pub type Key = Bytes;

/// A user value: an arbitrary byte string.
pub type Value = Bytes;

/// Monotonically increasing version number assigned to every write
/// (Section 2.1 of the paper).
pub type SequenceNumber = u64;

/// The largest sequence number ever used. Reads issued with this snapshot see
/// every committed write.
pub const MAX_SEQUENCE_NUMBER: SequenceNumber = (1 << 56) - 1;

/// Identifier of a node (server) participating in the fabric.
///
/// A node hosts an LTC, a StoC, or both; the coordinator also occupies a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Identifier of an LSM-tree component (LTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct LtcId(pub u32);

impl fmt::Display for LtcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ltc-{}", self.0)
    }
}

/// Identifier of a storage component (StoC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct StocId(pub u32);

impl fmt::Display for StocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stoc-{}", self.0)
    }
}

/// Identifier of an application range (the unit of partitioning across LTCs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct RangeId(pub u32);

impl fmt::Display for RangeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "range-{}", self.0)
    }
}

/// Identifier of a memtable within a range. Memtable ids are never reused
/// within the lifetime of a range; the lookup index maps user keys to
/// memtable ids through the indirect `MIDToTable` mapping (Section 4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct MemtableId(pub u64);

impl fmt::Display for MemtableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mid-{}", self.0)
    }
}

/// An SSTable file number, unique within a range.
pub type FileNumber = u64;

/// A globally unique StoC file id: the id of the StoC that owns the file in
/// the upper 32 bits and a per-StoC sequence number in the lower 32 bits
/// (Section 3.1: "A StoC file is identified by a globally unique file id").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct StocFileId(pub u64);

impl StocFileId {
    /// Compose a globally-unique file id from its owning StoC and a per-StoC
    /// sequence number.
    pub fn new(stoc: StocId, seq: u32) -> Self {
        StocFileId(((stoc.0 as u64) << 32) | seq as u64)
    }

    /// The StoC that owns this file.
    pub fn stoc(&self) -> StocId {
        StocId((self.0 >> 32) as u32)
    }

    /// The per-StoC sequence number of this file.
    pub fn seq(&self) -> u32 {
        (self.0 & 0xffff_ffff) as u32
    }
}

impl fmt::Display for StocFileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stocfile-{}/{}", self.stoc().0, self.seq())
    }
}

/// A handle to a block stored inside a StoC file: which StoC, which file,
/// and the byte extent inside the file. SSTable index blocks are rewritten in
/// terms of these handles when a table is scattered across StoCs
/// (Section 4.4: "it converts its index block to StoC block handles").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct StocBlockHandle {
    /// StoC that stores the block.
    pub stoc: StocId,
    /// File within that StoC.
    pub file: StocFileId,
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Size of the block in bytes.
    pub size: u32,
}

impl StocBlockHandle {
    /// A handle describing an empty extent on a (nonexistent) StoC, useful as
    /// a placeholder during construction.
    pub fn empty() -> Self {
        StocBlockHandle {
            stoc: StocId(u32::MAX),
            file: StocFileId(u64::MAX),
            offset: 0,
            size: 0,
        }
    }

    /// True if this handle does not reference any stored bytes.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

/// The kind of write recorded for a key: a live value or a deletion
/// tombstone (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
#[repr(u8)]
pub enum ValueType {
    /// A deletion tombstone.
    Deletion = 0,
    /// A live value.
    Value = 1,
}

impl ValueType {
    /// Decode a value type from its on-disk byte.
    pub fn from_u8(v: u8) -> Option<ValueType> {
        match v {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            _ => None,
        }
    }
}

/// An internal key: user key plus an 8-byte trailer packing the sequence
/// number (high 56 bits) and the value type (low 8 bits), exactly as LevelDB
/// encodes it. Internal keys with equal user keys sort by *descending*
/// sequence number so the newest version is found first.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct InternalKey {
    encoded: Bytes,
}

impl InternalKey {
    /// Build an internal key from its parts.
    pub fn new(user_key: &[u8], seq: SequenceNumber, vt: ValueType) -> Self {
        let mut buf = Vec::with_capacity(user_key.len() + 8);
        buf.extend_from_slice(user_key);
        buf.extend_from_slice(&pack_trailer(seq, vt).to_le_bytes());
        InternalKey {
            encoded: Bytes::from(buf),
        }
    }

    /// Reconstruct an internal key from its encoded representation.
    ///
    /// Returns `None` if the buffer is too short to contain a trailer.
    pub fn decode(encoded: &[u8]) -> Option<Self> {
        if encoded.len() < 8 {
            return None;
        }
        Some(InternalKey {
            encoded: Bytes::copy_from_slice(encoded),
        })
    }

    /// The full encoded representation (user key followed by the trailer).
    pub fn encoded(&self) -> &[u8] {
        &self.encoded
    }

    /// The user key portion.
    pub fn user_key(&self) -> &[u8] {
        &self.encoded[..self.encoded.len() - 8]
    }

    /// The sequence number packed in the trailer.
    pub fn sequence(&self) -> SequenceNumber {
        let t = self.trailer();
        t >> 8
    }

    /// The value type packed in the trailer.
    pub fn value_type(&self) -> ValueType {
        let t = self.trailer();
        ValueType::from_u8((t & 0xff) as u8).expect("invalid value type in internal key trailer")
    }

    fn trailer(&self) -> u64 {
        let n = self.encoded.len();
        u64::from_le_bytes(self.encoded[n - 8..].try_into().expect("trailer is 8 bytes"))
    }
}

/// Pack a sequence number and value type into the 8-byte internal-key trailer.
pub fn pack_trailer(seq: SequenceNumber, vt: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQUENCE_NUMBER);
    (seq << 8) | vt as u64
}

/// Unpack an internal-key trailer into its sequence number and value type.
pub fn unpack_trailer(trailer: u64) -> (SequenceNumber, ValueType) {
    let vt = ValueType::from_u8((trailer & 0xff) as u8).unwrap_or(ValueType::Value);
    (trailer >> 8, vt)
}

impl fmt::Debug for InternalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InternalKey({:?} @ {} {:?})",
            String::from_utf8_lossy(self.user_key()),
            self.sequence(),
            self.value_type()
        )
    }
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> Ordering {
        compare_internal_keys(self.encoded(), other.encoded())
    }
}

/// Compare two *encoded* internal keys: ascending by user key, then
/// descending by sequence number (so the most recent version sorts first).
pub fn compare_internal_keys(a: &[u8], b: &[u8]) -> Ordering {
    debug_assert!(
        a.len() >= 8 && b.len() >= 8,
        "internal keys must contain an 8-byte trailer"
    );
    let (ua, ta) = a.split_at(a.len() - 8);
    let (ub, tb) = b.split_at(b.len() - 8);
    match ua.cmp(ub) {
        Ordering::Equal => {
            let ta = u64::from_le_bytes(ta.try_into().expect("8-byte trailer"));
            let tb = u64::from_le_bytes(tb.try_into().expect("8-byte trailer"));
            // Higher sequence number (and thus higher trailer) sorts first.
            tb.cmp(&ta)
        }
        other => other,
    }
}

/// A key-value entry produced by iterators across the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The user key.
    pub key: Key,
    /// The sequence number of this version.
    pub sequence: SequenceNumber,
    /// Whether the entry is a live value or a tombstone.
    pub value_type: ValueType,
    /// The value bytes (empty for tombstones).
    pub value: Value,
}

impl Entry {
    /// Construct a live (non-tombstone) entry.
    pub fn put(key: impl Into<Key>, sequence: SequenceNumber, value: impl Into<Value>) -> Self {
        Entry {
            key: key.into(),
            sequence,
            value_type: ValueType::Value,
            value: value.into(),
        }
    }

    /// Construct a deletion tombstone.
    pub fn delete(key: impl Into<Key>, sequence: SequenceNumber) -> Self {
        Entry {
            key: key.into(),
            sequence,
            value_type: ValueType::Deletion,
            value: Bytes::new(),
        }
    }

    /// True if the entry is a deletion tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.value_type == ValueType::Deletion
    }

    /// The internal key corresponding to this entry.
    pub fn internal_key(&self) -> InternalKey {
        InternalKey::new(&self.key, self.sequence, self.value_type)
    }

    /// Approximate in-memory footprint of this entry in bytes, used for
    /// memtable size accounting.
    pub fn approximate_size(&self) -> usize {
        self.key.len() + self.value.len() + 8 + 1 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stoc_file_id_round_trips() {
        let id = StocFileId::new(StocId(7), 1234);
        assert_eq!(id.stoc(), StocId(7));
        assert_eq!(id.seq(), 1234);
    }

    #[test]
    fn internal_key_round_trips() {
        let k = InternalKey::new(b"user-42", 99, ValueType::Value);
        assert_eq!(k.user_key(), b"user-42");
        assert_eq!(k.sequence(), 99);
        assert_eq!(k.value_type(), ValueType::Value);
        let decoded = InternalKey::decode(k.encoded()).unwrap();
        assert_eq!(decoded, k);
    }

    #[test]
    fn internal_key_orders_by_user_key_then_descending_sequence() {
        let a = InternalKey::new(b"a", 5, ValueType::Value);
        let b = InternalKey::new(b"b", 1, ValueType::Value);
        assert!(a < b);

        let newer = InternalKey::new(b"k", 10, ValueType::Value);
        let older = InternalKey::new(b"k", 3, ValueType::Value);
        // Newer version sorts before (less than) the older version.
        assert!(newer < older);
    }

    #[test]
    fn tombstone_of_same_sequence_sorts_consistently() {
        let del = InternalKey::new(b"k", 7, ValueType::Deletion);
        let put = InternalKey::new(b"k", 7, ValueType::Value);
        // Value type is the low byte; a put has a larger trailer than a delete
        // at the same sequence, so the put sorts first.
        assert!(put < del);
    }

    #[test]
    fn trailer_pack_unpack() {
        let t = pack_trailer(123456, ValueType::Deletion);
        let (s, vt) = unpack_trailer(t);
        assert_eq!(s, 123456);
        assert_eq!(vt, ValueType::Deletion);
    }

    #[test]
    fn entry_helpers() {
        let e = Entry::put(&b"k"[..], 1, &b"v"[..]);
        assert!(!e.is_tombstone());
        assert_eq!(e.internal_key().user_key(), b"k");
        let d = Entry::delete(&b"k"[..], 2);
        assert!(d.is_tombstone());
        assert!(d.approximate_size() > 0);
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(NodeId(3).to_string(), "node-3");
        assert_eq!(LtcId(1).to_string(), "ltc-1");
        assert_eq!(StocId(2).to_string(), "stoc-2");
        assert_eq!(RangeId(9).to_string(), "range-9");
        assert_eq!(MemtableId(4).to_string(), "mid-4");
        assert_eq!(StocFileId::new(StocId(1), 2).to_string(), "stocfile-1/2");
    }

    #[test]
    fn value_type_decoding_rejects_garbage() {
        assert_eq!(ValueType::from_u8(0), Some(ValueType::Deletion));
        assert_eq!(ValueType::from_u8(1), Some(ValueType::Value));
        assert_eq!(ValueType::from_u8(2), None);
    }
}
