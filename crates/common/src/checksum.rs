//! CRC32C (Castagnoli) checksums used to validate blocks and log records.
//!
//! This is a table-driven software implementation (no hardware intrinsics)
//! so the workspace stays within its offline dependency budget. The masking
//! scheme matches LevelDB's: stored checksums are masked so that computing
//! the CRC of data that itself embeds CRCs does not produce pathological
//! results.

/// The CRC32C polynomial (reflected).
const CASTAGNOLI: u32 = 0x82f6_3b78;

/// Lazily built lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ CASTAGNOLI
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Compute the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extend a running CRC32C with more data.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !crc;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// Mask a CRC so it is safe to store alongside the data it covers.
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Undo [`mask`].
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32C test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        // 32 bytes of zero (from the RFC 3720 appendix).
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        // 32 bytes of 0xff.
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
    }

    #[test]
    fn extend_matches_single_shot() {
        let data = b"hello nova-lsm world";
        let (a, b) = data.split_at(7);
        assert_eq!(extend(extend(0, a), b), crc32c(data));
    }

    #[test]
    fn mask_round_trips_and_changes_value() {
        let crc = crc32c(b"payload");
        assert_ne!(mask(crc), crc);
        assert_eq!(unmask(mask(crc)), crc);
    }

    #[test]
    fn different_data_gives_different_checksum() {
        assert_ne!(crc32c(b"a"), crc32c(b"b"));
        assert_ne!(crc32c(b"ab"), crc32c(b"ba"));
    }

    proptest! {
        #[test]
        fn prop_mask_round_trips(crc in any::<u32>()) {
            prop_assert_eq!(unmask(mask(crc)), crc);
        }

        #[test]
        fn prop_extend_is_associative_with_concatenation(
            a in proptest::collection::vec(any::<u8>(), 0..128),
            b in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let mut joined = a.clone();
            joined.extend_from_slice(&b);
            prop_assert_eq!(extend(extend(0, &a), &b), crc32c(&joined));
        }
    }
}
