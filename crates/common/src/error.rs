//! Error types shared by every Nova-LSM component.

use crate::types::{LtcId, RangeId, StocId};
use std::fmt;

/// A specialized `Result` for Nova-LSM operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by Nova-LSM components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested key was not found.
    NotFound,
    /// Data read from storage failed validation (bad checksum, truncated
    /// block, malformed encoding).
    Corruption(String),
    /// An operation referenced a component that is not part of the current
    /// configuration or has failed.
    UnknownStoc(StocId),
    /// An operation referenced an LTC that is not part of the configuration.
    UnknownLtc(LtcId),
    /// An operation referenced a range that is not assigned to this LTC.
    WrongRange(RangeId),
    /// A request referenced a StoC file that does not exist (possibly
    /// deleted).
    UnknownFile(String),
    /// The component is shutting down and cannot accept new work.
    ShuttingDown,
    /// The write could not be admitted because the engine is stalled waiting
    /// for flushes or Level-0 compaction (Challenge 1 of the paper). Callers
    /// that set a non-blocking policy receive this error instead of waiting.
    WriteStalled,
    /// A lease required for the operation has expired.
    LeaseExpired(String),
    /// The simulated fabric failed to deliver a message (peer failed).
    FabricUnavailable(String),
    /// A storage device error (simulated disk failure or real I/O error).
    Io(String),
    /// The request was malformed or violated an invariant.
    InvalidArgument(String),
    /// An availability configuration could not be satisfied, e.g. parity
    /// reconstruction failed because too many fragments are missing.
    Unavailable(String),
    /// The caller's cached cluster configuration is stale: a migration or
    /// elasticity operation has (or is about to) become visible at `epoch`.
    /// Retriable: refresh the configuration until its epoch is at least
    /// `epoch`, re-route and retry.
    StaleConfig {
        /// The minimum configuration epoch the caller must observe before
        /// retrying.
        epoch: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound => write!(f, "key not found"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::UnknownStoc(id) => write!(f, "unknown storage component {id}"),
            Error::UnknownLtc(id) => write!(f, "unknown LSM-tree component {id}"),
            Error::WrongRange(id) => write!(f, "range {id} is not served by this component"),
            Error::UnknownFile(msg) => write!(f, "unknown StoC file: {msg}"),
            Error::ShuttingDown => write!(f, "component is shutting down"),
            Error::WriteStalled => write!(f, "write stalled waiting for flush/compaction"),
            Error::LeaseExpired(msg) => write!(f, "lease expired: {msg}"),
            Error::FabricUnavailable(msg) => write!(f, "fabric unavailable: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            Error::StaleConfig { epoch } => {
                write!(f, "configuration is stale; refresh to epoch >= {epoch} and retry")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl Error {
    /// True if the error indicates a missing key rather than a failure.
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound)
    }

    /// True if the operation may succeed if retried (transient condition).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::WriteStalled
                | Error::StaleConfig { .. }
                | Error::FabricUnavailable(_)
                | Error::LeaseExpired(_)
        )
    }

    /// True if the error indicates the caller routed with a stale cluster
    /// configuration and should refresh it and re-route before retrying:
    /// the owner changed mid-migration, the range moved, or the
    /// configuration still names an LTC that has been deregistered (the
    /// reassignment window of a failover).
    pub fn needs_config_refresh(&self) -> bool {
        matches!(
            self,
            Error::StaleConfig { .. } | Error::WrongRange(_) | Error::UnknownLtc(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let variants: Vec<Error> = vec![
            Error::NotFound,
            Error::Corruption("x".into()),
            Error::UnknownStoc(StocId(1)),
            Error::UnknownLtc(LtcId(2)),
            Error::WrongRange(RangeId(3)),
            Error::UnknownFile("f".into()),
            Error::ShuttingDown,
            Error::WriteStalled,
            Error::LeaseExpired("l".into()),
            Error::FabricUnavailable("n".into()),
            Error::Io("io".into()),
            Error::InvalidArgument("a".into()),
            Error::Unavailable("u".into()),
            Error::StaleConfig { epoch: 4 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn classification_helpers() {
        assert!(Error::NotFound.is_not_found());
        assert!(!Error::ShuttingDown.is_not_found());
        assert!(Error::WriteStalled.is_retryable());
        assert!(Error::StaleConfig { epoch: 7 }.is_retryable());
        assert!(!Error::Corruption("x".into()).is_retryable());
        assert!(Error::StaleConfig { epoch: 7 }.needs_config_refresh());
        assert!(Error::WrongRange(RangeId(0)).needs_config_refresh());
        assert!(Error::UnknownLtc(LtcId(1)).needs_config_refresh());
        assert!(!Error::WriteStalled.needs_config_refresh());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
