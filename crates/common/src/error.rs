//! Error types shared by every Nova-LSM component.
//!
//! [`ErrorCode`] is the single classification table for the whole workspace:
//! `NovaClient::with_range_routing`, the YCSB driver's `with_retries` and the
//! `nova-proto` wire mapping all consult it (via the delegating helpers on
//! [`Error`]) instead of pattern-matching variants independently.

use crate::types::{LtcId, RangeId, StocId};
use std::fmt;

/// A specialized `Result` for Nova-LSM operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by Nova-LSM components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested key was not found.
    NotFound,
    /// Data read from storage failed validation (bad checksum, truncated
    /// block, malformed encoding).
    Corruption(String),
    /// An operation referenced a component that is not part of the current
    /// configuration or has failed.
    UnknownStoc(StocId),
    /// An operation referenced an LTC that is not part of the configuration.
    UnknownLtc(LtcId),
    /// An operation referenced a range that is not assigned to this LTC.
    WrongRange(RangeId),
    /// A request referenced a StoC file that does not exist (possibly
    /// deleted).
    UnknownFile(String),
    /// The component is shutting down and cannot accept new work.
    ShuttingDown,
    /// The write could not be admitted because the engine is stalled waiting
    /// for flushes or Level-0 compaction (Challenge 1 of the paper). Callers
    /// that set a non-blocking policy receive this error instead of waiting.
    WriteStalled,
    /// A lease required for the operation has expired.
    LeaseExpired(String),
    /// The simulated fabric failed to deliver a message (peer failed).
    FabricUnavailable(String),
    /// A storage device error (simulated disk failure or real I/O error).
    Io(String),
    /// The request was malformed or violated an invariant.
    InvalidArgument(String),
    /// An availability configuration could not be satisfied, e.g. parity
    /// reconstruction failed because too many fragments are missing.
    Unavailable(String),
    /// The caller's cached cluster configuration is stale: a migration or
    /// elasticity operation has (or is about to) become visible at `epoch`.
    /// Retriable: refresh the configuration until its epoch is at least
    /// `epoch`, re-route and retry.
    StaleConfig {
        /// The minimum configuration epoch the caller must observe before
        /// retrying.
        epoch: u64,
    },
    /// The server shed the request under admission control or backpressure.
    /// Retriable after the suggested backoff.
    Busy {
        /// Suggested client backoff before retrying, in microseconds.
        retry_after_micros: u64,
    },
    /// Authentication or authorization failed (bad tenant token, or a
    /// non-admin tenant requested an admin operation). Terminal.
    AuthFailed(String),
    /// The peer violated the wire protocol (bad magic, unsupported version,
    /// checksum mismatch, oversized or undecodable frame). Terminal.
    ProtocolError(String),
    /// The operation referenced a secondary index that is not in the
    /// catalog. Terminal.
    IndexNotFound(String),
    /// The referenced secondary index exists but its backfill has not
    /// completed, so a scan would under-report. Retriable: the backfill is
    /// in progress and the index becomes `Active` when it finishes.
    IndexNotReady(String),
}

/// Compact, wire-stable classification of every [`Error`] variant.
///
/// The `u8` discriminants cross the wire in `nova-proto` error frames and
/// must never be renumbered — append new codes instead. Retryability and
/// config-refresh semantics are defined *here*, once, so every retry loop in
/// the workspace agrees with what the server sends back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// Missing key ([`Error::NotFound`]).
    NotFound = 1,
    /// Data failed validation ([`Error::Corruption`]).
    Corruption = 2,
    /// Unknown storage component ([`Error::UnknownStoc`]).
    UnknownStoc = 3,
    /// Unknown LSM-tree component ([`Error::UnknownLtc`]).
    UnknownLtc = 4,
    /// Range not served by the addressed component ([`Error::WrongRange`]).
    WrongRange = 5,
    /// Unknown StoC file ([`Error::UnknownFile`]).
    UnknownFile = 6,
    /// Component shutting down ([`Error::ShuttingDown`]).
    ShuttingDown = 7,
    /// Write admission stalled ([`Error::WriteStalled`]).
    WriteStalled = 8,
    /// Expired lease ([`Error::LeaseExpired`]).
    LeaseExpired = 9,
    /// Fabric delivery failure ([`Error::FabricUnavailable`]).
    FabricUnavailable = 10,
    /// Storage I/O error ([`Error::Io`]).
    Io = 11,
    /// Malformed request ([`Error::InvalidArgument`]).
    InvalidArgument = 12,
    /// Availability policy unsatisfiable ([`Error::Unavailable`]).
    Unavailable = 13,
    /// Stale cached configuration ([`Error::StaleConfig`]).
    StaleConfig = 14,
    /// Request shed by admission control ([`Error::Busy`]).
    Busy = 15,
    /// Authentication/authorization failure ([`Error::AuthFailed`]).
    AuthFailed = 16,
    /// Wire-protocol violation ([`Error::ProtocolError`]).
    ProtocolError = 17,
    /// Unknown secondary index ([`Error::IndexNotFound`]).
    IndexNotFound = 18,
    /// Secondary index still backfilling ([`Error::IndexNotReady`]).
    IndexNotReady = 19,
}

impl ErrorCode {
    /// Decode a wire discriminant. Unknown codes (from a newer peer) map to
    /// `None`; callers should treat them as terminal.
    pub fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::NotFound,
            2 => ErrorCode::Corruption,
            3 => ErrorCode::UnknownStoc,
            4 => ErrorCode::UnknownLtc,
            5 => ErrorCode::WrongRange,
            6 => ErrorCode::UnknownFile,
            7 => ErrorCode::ShuttingDown,
            8 => ErrorCode::WriteStalled,
            9 => ErrorCode::LeaseExpired,
            10 => ErrorCode::FabricUnavailable,
            11 => ErrorCode::Io,
            12 => ErrorCode::InvalidArgument,
            13 => ErrorCode::Unavailable,
            14 => ErrorCode::StaleConfig,
            15 => ErrorCode::Busy,
            16 => ErrorCode::AuthFailed,
            17 => ErrorCode::ProtocolError,
            18 => ErrorCode::IndexNotFound,
            19 => ErrorCode::IndexNotReady,
            _ => return None,
        })
    }

    /// The wire discriminant.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// True if an operation failing with this code may succeed if retried
    /// (transient condition). This is the one retryability table shared by
    /// client routing, the YCSB driver and the remote protocol.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::WriteStalled
                | ErrorCode::StaleConfig
                | ErrorCode::FabricUnavailable
                | ErrorCode::LeaseExpired
                | ErrorCode::Busy
                | ErrorCode::IndexNotReady
        )
    }

    /// True if the code indicates the caller routed with a stale cluster
    /// configuration and should refresh it and re-route before retrying.
    pub fn needs_config_refresh(self) -> bool {
        matches!(
            self,
            ErrorCode::StaleConfig | ErrorCode::WrongRange | ErrorCode::UnknownLtc
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::NotFound => "not_found",
            ErrorCode::Corruption => "corruption",
            ErrorCode::UnknownStoc => "unknown_stoc",
            ErrorCode::UnknownLtc => "unknown_ltc",
            ErrorCode::WrongRange => "wrong_range",
            ErrorCode::UnknownFile => "unknown_file",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::WriteStalled => "write_stalled",
            ErrorCode::LeaseExpired => "lease_expired",
            ErrorCode::FabricUnavailable => "fabric_unavailable",
            ErrorCode::Io => "io",
            ErrorCode::InvalidArgument => "invalid_argument",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::StaleConfig => "stale_config",
            ErrorCode::Busy => "busy",
            ErrorCode::AuthFailed => "auth_failed",
            ErrorCode::ProtocolError => "protocol_error",
            ErrorCode::IndexNotFound => "index_not_found",
            ErrorCode::IndexNotReady => "index_not_ready",
        };
        f.write_str(name)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound => write!(f, "key not found"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::UnknownStoc(id) => write!(f, "unknown storage component {id}"),
            Error::UnknownLtc(id) => write!(f, "unknown LSM-tree component {id}"),
            Error::WrongRange(id) => write!(f, "range {id} is not served by this component"),
            Error::UnknownFile(msg) => write!(f, "unknown StoC file: {msg}"),
            Error::ShuttingDown => write!(f, "component is shutting down"),
            Error::WriteStalled => write!(f, "write stalled waiting for flush/compaction"),
            Error::LeaseExpired(msg) => write!(f, "lease expired: {msg}"),
            Error::FabricUnavailable(msg) => write!(f, "fabric unavailable: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            Error::StaleConfig { epoch } => {
                write!(f, "configuration is stale; refresh to epoch >= {epoch} and retry")
            }
            Error::Busy { retry_after_micros } => {
                write!(f, "server busy; retry after {retry_after_micros}us")
            }
            Error::AuthFailed(msg) => write!(f, "authentication failed: {msg}"),
            Error::ProtocolError(msg) => write!(f, "protocol error: {msg}"),
            Error::IndexNotFound(msg) => write!(f, "index not found: {msg}"),
            Error::IndexNotReady(msg) => {
                write!(f, "index not ready (backfill in progress): {msg}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl Error {
    /// The wire-stable classification code for this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            Error::NotFound => ErrorCode::NotFound,
            Error::Corruption(_) => ErrorCode::Corruption,
            Error::UnknownStoc(_) => ErrorCode::UnknownStoc,
            Error::UnknownLtc(_) => ErrorCode::UnknownLtc,
            Error::WrongRange(_) => ErrorCode::WrongRange,
            Error::UnknownFile(_) => ErrorCode::UnknownFile,
            Error::ShuttingDown => ErrorCode::ShuttingDown,
            Error::WriteStalled => ErrorCode::WriteStalled,
            Error::LeaseExpired(_) => ErrorCode::LeaseExpired,
            Error::FabricUnavailable(_) => ErrorCode::FabricUnavailable,
            Error::Io(_) => ErrorCode::Io,
            Error::InvalidArgument(_) => ErrorCode::InvalidArgument,
            Error::Unavailable(_) => ErrorCode::Unavailable,
            Error::StaleConfig { .. } => ErrorCode::StaleConfig,
            Error::Busy { .. } => ErrorCode::Busy,
            Error::AuthFailed(_) => ErrorCode::AuthFailed,
            Error::ProtocolError(_) => ErrorCode::ProtocolError,
            Error::IndexNotFound(_) => ErrorCode::IndexNotFound,
            Error::IndexNotReady(_) => ErrorCode::IndexNotReady,
        }
    }

    /// True if the error indicates a missing key rather than a failure.
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound)
    }

    /// True if the operation may succeed if retried (transient condition).
    /// Delegates to [`ErrorCode::is_retryable`].
    pub fn is_retryable(&self) -> bool {
        self.code().is_retryable()
    }

    /// True if the error indicates the caller routed with a stale cluster
    /// configuration and should refresh it and re-route before retrying:
    /// the owner changed mid-migration, the range moved, or the
    /// configuration still names an LTC that has been deregistered (the
    /// reassignment window of a failover). Delegates to
    /// [`ErrorCode::needs_config_refresh`].
    pub fn needs_config_refresh(&self) -> bool {
        self.code().needs_config_refresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Error> {
        vec![
            Error::NotFound,
            Error::Corruption("x".into()),
            Error::UnknownStoc(StocId(1)),
            Error::UnknownLtc(LtcId(2)),
            Error::WrongRange(RangeId(3)),
            Error::UnknownFile("f".into()),
            Error::ShuttingDown,
            Error::WriteStalled,
            Error::LeaseExpired("l".into()),
            Error::FabricUnavailable("n".into()),
            Error::Io("io".into()),
            Error::InvalidArgument("a".into()),
            Error::Unavailable("u".into()),
            Error::StaleConfig { epoch: 4 },
            Error::Busy {
                retry_after_micros: 100,
            },
            Error::AuthFailed("t".into()),
            Error::ProtocolError("p".into()),
            Error::IndexNotFound("i".into()),
            Error::IndexNotReady("b".into()),
        ]
    }

    #[test]
    fn display_covers_all_variants() {
        for v in all_variants() {
            assert!(!v.to_string().is_empty());
            assert!(!v.code().to_string().is_empty());
        }
    }

    #[test]
    fn codes_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for v in all_variants() {
            let code = v.code();
            assert!(seen.insert(code.as_u8()), "duplicate wire code {}", code.as_u8());
            assert_eq!(ErrorCode::from_u8(code.as_u8()), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(200), None);
    }

    #[test]
    fn classification_helpers() {
        assert!(Error::NotFound.is_not_found());
        assert!(!Error::ShuttingDown.is_not_found());
        assert!(Error::WriteStalled.is_retryable());
        assert!(Error::StaleConfig { epoch: 7 }.is_retryable());
        assert!(Error::Busy {
            retry_after_micros: 1
        }
        .is_retryable());
        assert!(!Error::Corruption("x".into()).is_retryable());
        assert!(!Error::AuthFailed("x".into()).is_retryable());
        assert!(!Error::ProtocolError("x".into()).is_retryable());
        assert!(!Error::IndexNotFound("x".into()).is_retryable());
        assert!(Error::IndexNotReady("x".into()).is_retryable());
        assert!(!Error::IndexNotReady("x".into()).needs_config_refresh());
        assert!(Error::StaleConfig { epoch: 7 }.needs_config_refresh());
        assert!(Error::WrongRange(RangeId(0)).needs_config_refresh());
        assert!(Error::UnknownLtc(LtcId(1)).needs_config_refresh());
        assert!(!Error::WriteStalled.needs_config_refresh());
    }

    #[test]
    fn error_and_code_classifications_agree() {
        // The Error helpers delegate to ErrorCode; make sure no variant
        // disagrees with its code's classification.
        for v in all_variants() {
            assert_eq!(v.is_retryable(), v.code().is_retryable());
            assert_eq!(v.needs_config_refresh(), v.code().needs_config_refresh());
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
