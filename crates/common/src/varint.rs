//! LEB128-style variable-length integer encoding, as used throughout the
//! SSTable and log-record formats (the same scheme LevelDB uses).

use crate::error::{Error, Result};

/// Maximum encoded size of a `u32` varint.
pub const MAX_VARINT32_LEN: usize = 5;
/// Maximum encoded size of a `u64` varint.
pub const MAX_VARINT64_LEN: usize = 10;

/// Append a `u32` in varint encoding to `dst`.
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, v as u64);
}

/// Append a `u64` in varint encoding to `dst`.
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Append a length-prefixed byte slice (varint length followed by the bytes).
pub fn put_length_prefixed_slice(dst: &mut Vec<u8>, value: &[u8]) {
    put_varint64(dst, value.len() as u64);
    dst.extend_from_slice(value);
}

/// Decode a `u64` varint from the front of `src`, returning the value and the
/// number of bytes consumed.
pub fn decode_varint64(src: &[u8]) -> Result<(u64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in src.iter().enumerate() {
        if i >= MAX_VARINT64_LEN {
            break;
        }
        if byte < 0x80 {
            result |= (byte as u64) << shift;
            return Ok((result, i + 1));
        }
        result |= ((byte & 0x7f) as u64) << shift;
        shift += 7;
    }
    Err(Error::Corruption("truncated or overlong varint".into()))
}

/// Decode a `u32` varint from the front of `src`.
pub fn decode_varint32(src: &[u8]) -> Result<(u32, usize)> {
    let (v, n) = decode_varint64(src)?;
    if v > u32::MAX as u64 {
        return Err(Error::Corruption("varint32 overflow".into()));
    }
    Ok((v as u32, n))
}

/// Decode a length-prefixed byte slice from the front of `src`, returning the
/// slice and the total number of bytes consumed (prefix + payload).
pub fn decode_length_prefixed_slice(src: &[u8]) -> Result<(&[u8], usize)> {
    let (len, n) = decode_varint64(src)?;
    let len = len as usize;
    if src.len() < n + len {
        return Err(Error::Corruption(
            "length-prefixed slice extends past buffer".into(),
        ));
    }
    Ok((&src[n..n + len], n + len))
}

/// Encoded length of `v` as a varint.
pub fn varint_length(mut v: u64) -> usize {
    let mut len = 1;
    while v >= 0x80 {
        v >>= 7;
        len += 1;
    }
    len
}

/// Append a fixed-width little-endian `u32`.
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Append a fixed-width little-endian `u64`.
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Decode a fixed-width little-endian `u32` from the front of `src`.
pub fn decode_fixed32(src: &[u8]) -> Result<u32> {
    if src.len() < 4 {
        return Err(Error::Corruption("truncated fixed32".into()));
    }
    Ok(u32::from_le_bytes(src[..4].try_into().expect("4 bytes")))
}

/// Decode a fixed-width little-endian `u64` from the front of `src`.
pub fn decode_fixed64(src: &[u8]) -> Result<u64> {
    if src.len() < 8 {
        return Err(Error::Corruption("truncated fixed64".into()));
    }
    Ok(u64::from_le_bytes(src[..8].try_into().expect("8 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_round_trip_edge_cases() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            assert_eq!(buf.len(), varint_length(v));
            let (decoded, n) = decode_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint32_rejects_overflow() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        assert!(decode_varint32(&buf).is_err());
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, 1_000_000);
        buf.pop();
        assert!(decode_varint64(&buf).is_err());
        assert!(decode_varint64(&[]).is_err());
    }

    #[test]
    fn length_prefixed_slice_round_trip() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello world");
        put_length_prefixed_slice(&mut buf, b"");
        let (s1, n1) = decode_length_prefixed_slice(&buf).unwrap();
        assert_eq!(s1, b"hello world");
        let (s2, n2) = decode_length_prefixed_slice(&buf[n1..]).unwrap();
        assert_eq!(s2, b"");
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn length_prefixed_slice_detects_truncation() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello");
        buf.truncate(buf.len() - 1);
        assert!(decode_length_prefixed_slice(&buf).is_err());
    }

    #[test]
    fn fixed_width_round_trip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdead_beef);
        put_fixed64(&mut buf, 0x0123_4567_89ab_cdef);
        assert_eq!(decode_fixed32(&buf).unwrap(), 0xdead_beef);
        assert_eq!(decode_fixed64(&buf[4..]).unwrap(), 0x0123_4567_89ab_cdef);
        assert!(decode_fixed32(&buf[..3]).is_err());
        assert!(decode_fixed64(&buf[..7]).is_err());
    }

    proptest! {
        #[test]
        fn prop_varint64_round_trips(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (decoded, n) = decode_varint64(&buf).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(n, buf.len());
        }

        #[test]
        fn prop_varint32_round_trips(v in any::<u32>()) {
            let mut buf = Vec::new();
            put_varint32(&mut buf, v);
            let (decoded, n) = decode_varint32(&buf).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(n, buf.len());
        }

        #[test]
        fn prop_slices_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut buf = Vec::new();
            put_length_prefixed_slice(&mut buf, &data);
            let (decoded, n) = decode_length_prefixed_slice(&buf).unwrap();
            prop_assert_eq!(decoded, &data[..]);
            prop_assert_eq!(n, buf.len());
        }

        #[test]
        fn prop_concatenated_varints_decode_in_order(values in proptest::collection::vec(any::<u64>(), 1..64)) {
            let mut buf = Vec::new();
            for &v in &values {
                put_varint64(&mut buf, v);
            }
            let mut offset = 0;
            for &v in &values {
                let (decoded, n) = decode_varint64(&buf[offset..]).unwrap();
                prop_assert_eq!(decoded, v);
                offset += n;
            }
            prop_assert_eq!(offset, buf.len());
        }
    }
}
