//! # nova-common
//!
//! Shared substrate for the Nova-LSM reproduction: key/value types, internal
//! keys with sequence numbers, the configuration knobs from Table 1 of the
//! paper (η, β, ω, θ, γ, α, δ, τ, ρ), error types, comparators, varint
//! encoding, CRC32C checksums, latency histograms and a monotonic clock
//! abstraction.
//!
//! Every other crate in the workspace depends on this one; it depends only on
//! `bytes`, `serde` and `parking_lot`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checksum;
pub mod clock;
pub mod comparator;
pub mod config;
pub mod error;
pub mod histogram;
pub mod keyspace;
pub mod options;
pub mod rate;
pub mod types;
pub mod varint;

pub use error::{Error, ErrorCode, Result};
pub use options::{ReadOptions, WriteOptions};
pub use types::{
    FileNumber, InternalKey, Key, LtcId, MemtableId, NodeId, RangeId, SequenceNumber, StocBlockHandle,
    StocFileId, StocId, Value, ValueType,
};

/// The default size, in bytes, of a memtable / SSTable (paper notation τ).
///
/// The paper uses 16 MB; experiments in this repository default to a scaled
/// value set in [`config::RangeConfig`].
pub const DEFAULT_MEMTABLE_SIZE: usize = 16 * 1024 * 1024;

/// The number of unique keys below which an immutable memtable is merged into
/// a new memtable instead of being flushed as an SSTable (Section 4.2 of the
/// paper uses 100).
pub const DEFAULT_UNIQUE_KEY_FLUSH_THRESHOLD: usize = 100;
