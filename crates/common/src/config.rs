//! Configuration knobs for every Nova-LSM component.
//!
//! The names mirror Table 1 of the paper:
//!
//! | Notation | Meaning | Field |
//! |---|---|---|
//! | η | total LTCs | [`ClusterConfig::num_ltcs`] |
//! | β | total StoCs | [`ClusterConfig::num_stocs`] |
//! | ω | ranges per LTC | [`ClusterConfig::ranges_per_ltc`] |
//! | θ | Dranges per range | [`RangeConfig::num_dranges`] |
//! | γ | Tranges per Drange | [`RangeConfig::tranges_per_drange`] |
//! | α | active memtables per range | [`RangeConfig::active_memtables`] |
//! | δ | memtables per range | [`RangeConfig::max_memtables`] |
//! | τ | memtable/SSTable size | [`RangeConfig::memtable_size_bytes`] |
//! | ρ | StoCs a SSTable is scattered across | [`RangeConfig::scatter_width`] |

use serde::{Deserialize, Serialize};

/// How an LTC selects the ρ StoCs that store a new SSTable (Section 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Always use the StoC local to the LTC's node (shared-nothing baseline).
    LocalOnly,
    /// Pick ρ StoCs uniformly at random.
    Random,
    /// Power-of-d random choices: peek at the disk queues of `2ρ` randomly
    /// selected StoCs and pick the ρ with the shortest queues.
    PowerOfD,
}

/// How an SSTable's availability is protected against StoC failures
/// (Section 4.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AvailabilityPolicy {
    /// No redundancy: a StoC failure renders the SSTable unavailable.
    None,
    /// Replicate every fragment `r` times across distinct StoCs.
    Replicate(u32),
    /// One parity block computed over the ρ data fragments.
    Parity,
    /// The paper's Hybrid: a parity block for the data fragments plus 3
    /// replicas of the (small) metadata block.
    Hybrid,
}

impl AvailabilityPolicy {
    /// The number of copies of each data fragment written, including the
    /// primary copy.
    pub fn data_copies(&self) -> u32 {
        match self {
            AvailabilityPolicy::Replicate(r) => (*r).max(1),
            _ => 1,
        }
    }

    /// True if a parity block should be computed over the data fragments.
    pub fn uses_parity(&self) -> bool {
        matches!(self, AvailabilityPolicy::Parity | AvailabilityPolicy::Hybrid)
    }

    /// The number of replicas of the metadata (index + bloom filter) block.
    pub fn metadata_replicas(&self) -> u32 {
        match self {
            AvailabilityPolicy::Hybrid => 3,
            AvailabilityPolicy::Replicate(r) => (*r).max(1),
            _ => 1,
        }
    }

    /// Fractional space overhead relative to storing each byte once, as used
    /// by Table 2 of the paper (metadata overhead is ignored because metadata
    /// blocks are small).
    pub fn space_overhead(&self, scatter_width: u32) -> f64 {
        match self {
            AvailabilityPolicy::None => 0.0,
            AvailabilityPolicy::Replicate(r) => (*r).max(1) as f64 - 1.0,
            AvailabilityPolicy::Parity | AvailabilityPolicy::Hybrid => 1.0 / scatter_width.max(1) as f64,
        }
    }
}

/// How LogC persists log records (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogPolicy {
    /// Logging disabled entirely (the paper's default for most experiments).
    Disabled,
    /// In-memory log files replicated to `replicas` StoCs via one-sided
    /// writes: provides availability with the fastest service times.
    InMemoryReplicated {
        /// Number of in-memory replicas.
        replicas: u32,
    },
    /// Log records persisted to a StoC disk: provides durability.
    Persistent,
    /// Persistent log with the most recent records also kept in memory:
    /// durability with a reduced mean time to recovery.
    PersistentWithMemory {
        /// Number of in-memory replicas of the tail.
        replicas: u32,
    },
}

impl LogPolicy {
    /// True if any log records are generated at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, LogPolicy::Disabled)
    }

    /// Number of in-memory replicas maintained.
    pub fn memory_replicas(&self) -> u32 {
        match self {
            LogPolicy::InMemoryReplicated { replicas } | LogPolicy::PersistentWithMemory { replicas } => {
                *replicas
            }
            _ => 0,
        }
    }

    /// True if records are also written to persistent storage.
    pub fn durable(&self) -> bool {
        matches!(
            self,
            LogPolicy::Persistent | LogPolicy::PersistentWithMemory { .. }
        )
    }
}

/// Per-range configuration: the knobs that control a single LSM-tree
/// maintained by an LTC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeConfig {
    /// θ: number of dynamic ranges (Dranges) the range is divided into.
    pub num_dranges: usize,
    /// γ: number of tiny ranges (Tranges) per Drange.
    pub tranges_per_drange: usize,
    /// α: number of active memtables per range (one per Drange while
    /// `num_dranges == active_memtables`; duplicated Dranges share them).
    pub active_memtables: usize,
    /// δ: total memtables per range (active + immutable).
    pub max_memtables: usize,
    /// τ: size of a memtable / SSTable in bytes.
    pub memtable_size_bytes: usize,
    /// ρ: number of StoCs the blocks of one SSTable are scattered across.
    pub scatter_width: usize,
    /// Placement policy used to choose the ρ StoCs.
    pub placement: PlacementPolicy,
    /// Availability policy for SSTable fragments.
    pub availability: AvailabilityPolicy,
    /// Logging policy.
    pub log_policy: LogPolicy,
    /// Immutable memtables whose unique-key count is below this threshold are
    /// merged into a new memtable instead of flushed (Section 4.2).
    pub unique_key_flush_threshold: usize,
    /// Maximum total bytes of Level-0 SSTables before writes stall
    /// (Challenge 1).
    pub level0_stall_bytes: u64,
    /// Size ratio between adjacent levels (LevelDB uses 10).
    pub level_size_multiplier: u64,
    /// Expected size of Level 1 in bytes.
    pub level1_max_bytes: u64,
    /// Number of levels in the tree (including Level 0).
    pub num_levels: usize,
    /// Number of background threads used to flush immutable memtables and run
    /// compactions for this range.
    pub compaction_threads: usize,
    /// Whether Level-0 compaction jobs are offloaded to StoCs (Section 4.3)
    /// rather than executed by the LTC itself.
    pub offload_compaction: bool,
    /// Drange load-imbalance threshold ε that triggers a minor
    /// reorganisation: a Drange whose share of writes exceeds `1/θ + ε`.
    pub reorg_epsilon: f64,
    /// Number of writes sampled between reorganisation checks.
    pub reorg_check_interval: u64,
    /// Whether the lookup index (Section 4.1.1) is maintained.
    pub enable_lookup_index: bool,
    /// Whether the range index (Section 4.1.2) is maintained.
    pub enable_range_index: bool,
    /// Whether gets/puts block when stalled (true) or return
    /// [`crate::Error::WriteStalled`] (false).
    pub block_on_stall: bool,
    /// Target size of an individual data block within an SSTable.
    pub block_size_bytes: usize,
    /// Bloom filter bits per key (0 disables bloom filters).
    pub bloom_bits_per_key: usize,
}

impl Default for RangeConfig {
    fn default() -> Self {
        RangeConfig {
            num_dranges: 8,
            tranges_per_drange: 8,
            active_memtables: 8,
            max_memtables: 32,
            memtable_size_bytes: 1 << 20,
            scatter_width: 1,
            placement: PlacementPolicy::PowerOfD,
            availability: AvailabilityPolicy::None,
            log_policy: LogPolicy::Disabled,
            unique_key_flush_threshold: crate::DEFAULT_UNIQUE_KEY_FLUSH_THRESHOLD,
            level0_stall_bytes: 64 << 20,
            level_size_multiplier: 10,
            level1_max_bytes: 32 << 20,
            num_levels: 4,
            compaction_threads: 4,
            offload_compaction: false,
            reorg_epsilon: 0.05,
            reorg_check_interval: 10_000,
            enable_lookup_index: true,
            enable_range_index: true,
            block_on_stall: true,
            block_size_bytes: 4096,
            bloom_bits_per_key: 10,
        }
    }
}

impl RangeConfig {
    /// Memtables available to each Drange (δ / θ), at least one.
    pub fn memtables_per_drange(&self) -> usize {
        (self.max_memtables / self.num_dranges.max(1)).max(1)
    }

    /// Total memory budget of the range in bytes (δ × τ).
    pub fn memory_budget_bytes(&self) -> u64 {
        self.max_memtables as u64 * self.memtable_size_bytes as u64
    }

    /// Validate invariants between knobs, returning a description of the
    /// first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_dranges == 0 {
            return Err("num_dranges (θ) must be at least 1".into());
        }
        if self.active_memtables == 0 {
            return Err("active_memtables (α) must be at least 1".into());
        }
        if self.max_memtables < self.active_memtables {
            return Err("max_memtables (δ) must be >= active_memtables (α)".into());
        }
        if self.memtable_size_bytes == 0 {
            return Err("memtable_size_bytes (τ) must be non-zero".into());
        }
        if self.scatter_width == 0 {
            return Err("scatter_width (ρ) must be at least 1".into());
        }
        if self.num_levels < 2 {
            return Err("num_levels must be at least 2".into());
        }
        if self.tranges_per_drange == 0 {
            return Err("tranges_per_drange (γ) must be at least 1".into());
        }
        Ok(())
    }

    /// Max bytes allowed at a given level before it becomes eligible for
    /// compaction. Level 0 is governed by `level0_stall_bytes` instead.
    pub fn max_bytes_for_level(&self, level: usize) -> u64 {
        if level == 0 {
            return self.level0_stall_bytes;
        }
        let mut bytes = self.level1_max_bytes;
        for _ in 1..level {
            bytes = bytes.saturating_mul(self.level_size_multiplier);
        }
        bytes
    }
}

/// Configuration of a simulated storage device (see `nova-stoc`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskConfig {
    /// Sustained sequential bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Average positioning time (seek + rotational latency) per request, in
    /// microseconds. Zero models an in-memory device (the paper's tmpfs
    /// experiment, Figure 19).
    pub seek_micros: u64,
    /// If true the disk *accounts* service time without sleeping, producing
    /// deterministic virtual-time results; if false the caller actually
    /// blocks for the simulated service time.
    pub accounting_only: bool,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            bandwidth_bytes_per_sec: 125 * 1000 * 1000,
            seek_micros: 8_000,
            accounting_only: false,
        }
    }
}

impl DiskConfig {
    /// A disk profile approximating the paper's 1 TB hard disks
    /// (~125 MB/s sequential, ~8 ms positioning time).
    pub fn hard_disk() -> Self {
        Self::default()
    }

    /// An in-memory (tmpfs-like) profile used by the Figure 19 experiment:
    /// effectively infinite bandwidth and no positioning time.
    pub fn tmpfs() -> Self {
        DiskConfig {
            bandwidth_bytes_per_sec: 20_000 * 1000 * 1000,
            seek_micros: 0,
            accounting_only: false,
        }
    }

    /// A scaled-down disk used by the experiment harness so runs finish in
    /// seconds while preserving the bandwidth:workload ratio of the paper.
    pub fn scaled(bandwidth_mb_per_sec: u64, seek_micros: u64) -> Self {
        DiskConfig {
            bandwidth_bytes_per_sec: bandwidth_mb_per_sec * 1000 * 1000,
            seek_micros,
            accounting_only: false,
        }
    }
}

/// Configuration of the simulated RDMA fabric (see `nova-fabric`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// One-way latency of a verb in nanoseconds (the paper's RNICs are a few
    /// microseconds).
    pub latency_nanos: u64,
    /// Link bandwidth in bytes per second (56 Gbps in the paper).
    pub bandwidth_bytes_per_sec: u64,
    /// Number of exchange (xchg) threads per node that poll queue pairs.
    pub xchg_threads_per_node: usize,
    /// If true, verbs sleep for their simulated transfer time; if false they
    /// only account it (network is never the bottleneck in the paper's
    /// experiments, so accounting is the default).
    pub simulate_delay: bool,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            latency_nanos: 3_000,
            bandwidth_bytes_per_sec: 7_000 * 1000 * 1000,
            xchg_threads_per_node: 2,
            simulate_delay: false,
        }
    }
}

/// Configuration of the per-LTC block cache (the `nova-cache` crate).
///
/// The cache sits between the SSTable readers and the StoC read path: data
/// blocks fetched over the fabric are retained at the LTC, keyed by their
/// physical `(StocFileId, offset)` identity, so re-reads of hot blocks skip
/// the fabric round-trip and the StoC disk entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total cache capacity per LTC in bytes. Zero disables the cache.
    pub capacity_bytes: u64,
    /// Number of independently locked shards (rounded up to a power of two).
    pub shards: usize,
    /// Enable the TinyLFU frequency-based admission filter, which keeps
    /// one-touch scan blocks from displacing the hot working set.
    pub admission: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 << 20,
            shards: 16,
            admission: true,
        }
    }
}

impl CacheConfig {
    /// A configuration with caching turned off.
    pub fn disabled() -> Self {
        CacheConfig {
            capacity_bytes: 0,
            ..Default::default()
        }
    }

    /// True if a cache should be constructed at all.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Validate invariants between knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled() && self.shards == 0 {
            return Err("block cache shards must be at least 1".into());
        }
        Ok(())
    }
}

/// Configuration of the observability layer (the `nova-obs` crate).
///
/// Enabled by default: the instrumented hot path is contractually within 5%
/// of the disabled baseline (enforced by the `fig27_obs_overhead` bench), so
/// there is no reason to fly blind. [`MetricsConfig::disabled`] turns every
/// timer into a single branch for overhead-baseline measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsConfig {
    /// Record per-operation and per-layer latency. When false, timers are
    /// no-ops (no clock reads); named counters and gauges still function.
    pub enabled: bool,
    /// Operations at or above this end-to-end latency are captured in the
    /// slow-op ring with their per-layer timing breakdown.
    pub slow_op_threshold_micros: u64,
    /// How many slow operations the ring retains (oldest overwritten first).
    pub slow_op_capacity: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            enabled: true,
            slow_op_threshold_micros: 10_000,
            slow_op_capacity: 128,
        }
    }
}

impl MetricsConfig {
    /// A configuration whose timers are no-ops — the overhead baseline.
    pub fn disabled() -> Self {
        MetricsConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

/// Configuration of the self-healing supervisor: the failure detector's
/// heartbeat cadence and suspicion thresholds, plus the I/O budget that
/// throttles background re-replication so healing never starves foreground
/// traffic.
///
/// The supervisor is a background thread owned by the cluster. When
/// `enabled`, it pings every component node on the heartbeat cadence,
/// renews leases for the nodes that answer, feeds probe failures and lease
/// expiries into an adaptive-window failure detector, auto-triggers LTC
/// failover on confirmed failures, and repairs replication debt (SSTable
/// fragment / metadata replicas below target) onto placeable StoCs. When
/// disabled (the default — most tests and experiments inject failures and
/// recover them manually), `NovaCluster::self_heal_tick` still performs one
/// supervision round on demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Spawn the background supervisor thread at cluster start.
    pub enabled: bool,
    /// Cadence of the supervision loop in milliseconds: each tick pings
    /// every component node, renews leases and evaluates suspicion.
    pub heartbeat_millis: u64,
    /// Suspicion level (phi) at which a node becomes *suspect*: the ratio of
    /// the time since its last successful heartbeat to its adaptive
    /// expected-interval window (mean + 2σ of observed inter-arrivals).
    pub phi_threshold: f64,
    /// Consecutive strikes — failed probes, expired leases, or suspect
    /// evaluations — before a suspect node is *confirmed* failed and
    /// recovery triggers. Guards against flapping on slow-but-alive nodes.
    pub confirm_ticks: u32,
    /// Floor of the adaptive expected-interval window in milliseconds, so a
    /// burst of quick heartbeats cannot shrink the window into hair-trigger
    /// territory.
    pub min_window_millis: u64,
    /// Token-bucket budget for background re-replication, in bytes per
    /// second. Repair copies that would exceed the budget are deferred to a
    /// later tick. `0` disables the throttle (unbounded repair bandwidth).
    pub rereplication_bytes_per_sec: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            enabled: false,
            heartbeat_millis: 100,
            phi_threshold: 4.0,
            confirm_ticks: 3,
            min_window_millis: 50,
            rereplication_bytes_per_sec: 32 * 1000 * 1000,
        }
    }
}

impl SupervisorConfig {
    /// Validate invariants between knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat_millis == 0 {
            return Err("supervisor heartbeat_millis must be at least 1".into());
        }
        if self.phi_threshold <= 0.0 {
            return Err("supervisor phi_threshold must be positive".into());
        }
        if self.confirm_ticks == 0 {
            return Err("supervisor confirm_ticks must be at least 1".into());
        }
        Ok(())
    }
}

/// One tenant of the network front door: an identity the server
/// authenticates by token and meters with a per-tenant token bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Tenant name presented in the wire handshake.
    pub name: String,
    /// Shared-secret token the tenant must present. Compared verbatim.
    pub token: String,
    /// Admission-control budget in operations per second (a batch of n
    /// keys consumes n tokens). `0` means unlimited.
    pub ops_per_sec: u64,
    /// Whether the tenant may issue admin frames (health report, metrics
    /// snapshot).
    pub admin: bool,
}

impl TenantConfig {
    /// An unlimited admin tenant, convenient for tests and local tooling.
    pub fn admin(name: &str, token: &str) -> Self {
        TenantConfig {
            name: name.into(),
            token: token.into(),
            ops_per_sec: 0,
            admin: true,
        }
    }
}

/// Configuration of the network front door (the `nova-server` crate): the
/// TCP listener that fronts [`ClusterConfig`]-built clusters with the framed
/// wire protocol, per-tenant authentication and admission control.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Address the TCP listener binds, e.g. `127.0.0.1:4590`. Port `0`
    /// binds an ephemeral port (tests and benches).
    pub listen_addr: String,
    /// Upper bound on concurrently served connections. Connections beyond
    /// the bound are refused with a retryable `busy` frame — the accept
    /// pool is bounded rather than queueing unboundedly.
    pub max_connections: usize,
    /// Backpressure threshold: write requests are shed with a retryable
    /// `busy` frame while the cluster's background backlog (queued +
    /// running flush/compaction jobs across all LTCs) is at or above this
    /// value. `u64::MAX` (the default) never sheds; `0` always sheds —
    /// useful for deterministic tests.
    pub shed_backlog_threshold: u64,
    /// Suggested client backoff carried in `busy` frames, in microseconds.
    pub retry_after_micros: u64,
    /// Require every connection to authenticate with a `hello` frame before
    /// issuing operations. When false, connections that skip the handshake
    /// run as an implicit unlimited admin tenant (local tooling).
    pub require_auth: bool,
    /// The tenants the server accepts. Empty with `require_auth = false`
    /// means anonymous-only.
    pub tenants: Vec<TenantConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen_addr: "127.0.0.1:4590".into(),
            max_connections: 256,
            shed_backlog_threshold: u64::MAX,
            retry_after_micros: 2_000,
            require_auth: false,
            tenants: Vec::new(),
        }
    }
}

impl ServerConfig {
    /// Validate invariants between knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.listen_addr.is_empty() {
            return Err("server listen_addr must be non-empty".into());
        }
        if self.max_connections == 0 {
            return Err("server max_connections must be at least 1".into());
        }
        let mut names = std::collections::HashSet::new();
        for tenant in &self.tenants {
            if tenant.name.is_empty() {
                return Err("server tenant names must be non-empty".into());
            }
            if !names.insert(tenant.name.as_str()) {
                return Err(format!("duplicate server tenant name '{}'", tenant.name));
            }
        }
        if self.require_auth && self.tenants.is_empty() {
            return Err("server require_auth with no tenants would reject every connection".into());
        }
        Ok(())
    }
}

/// Cluster-wide deployment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// η: number of LSM-tree components.
    pub num_ltcs: usize,
    /// β: number of storage components.
    pub num_stocs: usize,
    /// ω: number of application ranges served by each LTC.
    pub ranges_per_ltc: usize,
    /// Per-range configuration applied to every range.
    pub range: RangeConfig,
    /// Storage device profile used by every StoC.
    pub disk: DiskConfig,
    /// Fabric (simulated RDMA) configuration.
    pub fabric: FabricConfig,
    /// Per-LTC block cache configuration.
    pub block_cache: CacheConfig,
    /// Fan-out width of each component's scatter-gather StoC I/O pool: how
    /// many block transfers (fragment writes/reads, replicas, parity,
    /// metadata, scan readahead) one flush/read may keep in flight
    /// concurrently. Width 1 forces the serial fragment-by-fragment
    /// behaviour (useful as a benchmark baseline).
    pub stoc_io_parallelism: usize,
    /// Upper bound on the bytes one log group-commit write carries. The
    /// group-commit leader drains at most this many bytes of queued log
    /// records into a single `RDMA WRITE` per replica (Section 5's
    /// one-write-per-record protocol, amortized across concurrent writers).
    /// The byte layout of the log is identical at every setting — records
    /// are still concatenated in commit order — so recovery is untouched.
    pub group_commit_bytes: usize,
    /// Upper bound on how many log records one group-commit write carries.
    /// `1` disables grouping: every record is replicated with its own
    /// write, exactly the pre-group-commit serial protocol (combine with
    /// `stoc_io_parallelism = 1` for the fully serial baseline).
    pub group_commit_max_records: usize,
    /// Worker threads per StoC that execute storage requests.
    pub stoc_storage_threads: usize,
    /// Worker threads per StoC dedicated to offloaded compactions.
    pub stoc_compaction_threads: usize,
    /// Lease duration granted by the coordinator, in milliseconds.
    pub lease_millis: u64,
    /// Upper bound on how many times a client refreshes its cached
    /// configuration and retries an operation that hit a stale-configuration
    /// window (range migration, LTC failover). Each retry re-routes through
    /// the coordinator's current configuration; once the bound is exhausted
    /// the last error surfaces to the application.
    pub client_retries: usize,
    /// Total keyspace: keys are `0..num_keys` formatted as zero-padded
    /// strings, range-partitioned uniformly across `num_ltcs × ranges_per_ltc`
    /// ranges.
    pub num_keys: u64,
    /// Observability: latency histograms and the slow-op ring.
    pub metrics: MetricsConfig,
    /// Self-healing: failure detector cadence/thresholds and the background
    /// re-replication budget.
    pub supervisor: SupervisorConfig,
    /// Network front door: listener address, connection bound, tenants and
    /// QoS knobs consumed by the `nova-server` crate.
    pub server: ServerConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_ltcs: 1,
            num_stocs: 1,
            ranges_per_ltc: 1,
            range: RangeConfig::default(),
            disk: DiskConfig::default(),
            fabric: FabricConfig::default(),
            block_cache: CacheConfig::default(),
            stoc_io_parallelism: 8,
            group_commit_bytes: 64 << 10,
            group_commit_max_records: 64,
            stoc_storage_threads: 4,
            stoc_compaction_threads: 2,
            lease_millis: 1_000,
            client_retries: 64,
            num_keys: 100_000,
            metrics: MetricsConfig::default(),
            supervisor: SupervisorConfig::default(),
            server: ServerConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Total number of application ranges in the cluster (η × ω).
    pub fn total_ranges(&self) -> usize {
        self.num_ltcs * self.ranges_per_ltc
    }

    /// Validate cross-component invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_ltcs == 0 {
            return Err("num_ltcs (η) must be at least 1".into());
        }
        if self.num_stocs == 0 {
            return Err("num_stocs (β) must be at least 1".into());
        }
        if self.ranges_per_ltc == 0 {
            return Err("ranges_per_ltc (ω) must be at least 1".into());
        }
        if self.range.scatter_width > self.num_stocs {
            return Err(format!(
                "scatter_width ρ={} exceeds number of StoCs β={}",
                self.range.scatter_width, self.num_stocs
            ));
        }
        if self.num_keys == 0 {
            return Err("num_keys must be non-zero".into());
        }
        if self.stoc_io_parallelism == 0 {
            return Err("stoc_io_parallelism must be at least 1 (1 = serial I/O)".into());
        }
        if self.group_commit_bytes == 0 {
            return Err("group_commit_bytes must be at least 1".into());
        }
        if self.group_commit_max_records == 0 {
            return Err("group_commit_max_records must be at least 1 (1 = per-record logging)".into());
        }
        if self.client_retries == 0 {
            return Err("client_retries must be at least 1".into());
        }
        self.block_cache.validate()?;
        self.supervisor.validate()?;
        self.server.validate()?;
        self.range.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        assert!(RangeConfig::default().validate().is_ok());
        assert!(ClusterConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_range_configs_are_rejected() {
        let c = RangeConfig {
            num_dranges: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = RangeConfig {
            max_memtables: 1,
            active_memtables: 2,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = RangeConfig {
            scatter_width: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_io_parallelism_is_rejected() {
        let c = ClusterConfig {
            stoc_io_parallelism: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterConfig {
            stoc_io_parallelism: 1,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_group_commit_knobs_are_rejected() {
        let c = ClusterConfig {
            group_commit_bytes: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterConfig {
            group_commit_max_records: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterConfig {
            group_commit_max_records: 1,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cluster_validation_checks_scatter_width_against_stocs() {
        let mut c = ClusterConfig {
            num_stocs: 2,
            ..Default::default()
        };
        c.range.scatter_width = 3;
        assert!(c.validate().is_err());
        c.range.scatter_width = 2;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cache_config_accessors_and_validation() {
        let c = CacheConfig::default();
        assert!(c.enabled());
        assert!(c.validate().is_ok());
        assert!(!CacheConfig::disabled().enabled());
        assert!(CacheConfig::disabled().validate().is_ok());
        let bad = CacheConfig {
            shards: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let mut cluster = ClusterConfig::default();
        cluster.block_cache.shards = 0;
        assert!(cluster.validate().is_err());
    }

    #[test]
    fn supervisor_config_validation() {
        assert!(SupervisorConfig::default().validate().is_ok());
        let c = SupervisorConfig {
            heartbeat_millis: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SupervisorConfig {
            phi_threshold: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SupervisorConfig {
            confirm_ticks: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        // Cluster validation covers the supervisor knobs.
        let mut cluster = ClusterConfig::default();
        cluster.supervisor.confirm_ticks = 0;
        assert!(cluster.validate().is_err());
        // A zero budget is valid: it means "unthrottled", not "no repair".
        let c = SupervisorConfig {
            rereplication_bytes_per_sec: 0,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn server_config_validation() {
        assert!(ServerConfig::default().validate().is_ok());
        let c = ServerConfig {
            max_connections: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ServerConfig {
            listen_addr: String::new(),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        // Duplicate tenant names are rejected.
        let c = ServerConfig {
            tenants: vec![TenantConfig::admin("a", "t1"), TenantConfig::admin("a", "t2")],
            ..Default::default()
        };
        assert!(c.validate().is_err());
        // require_auth with no tenants would lock everyone out.
        let c = ServerConfig {
            require_auth: true,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ServerConfig {
            require_auth: true,
            tenants: vec![TenantConfig::admin("a", "t")],
            ..Default::default()
        };
        assert!(c.validate().is_ok());
        // Cluster validation covers the server knobs.
        let mut cluster = ClusterConfig::default();
        cluster.server.max_connections = 0;
        assert!(cluster.validate().is_err());
    }

    #[test]
    fn level_sizes_grow_by_multiplier() {
        let c = RangeConfig {
            level1_max_bytes: 10,
            level_size_multiplier: 10,
            ..Default::default()
        };
        assert_eq!(c.max_bytes_for_level(1), 10);
        assert_eq!(c.max_bytes_for_level(2), 100);
        assert_eq!(c.max_bytes_for_level(3), 1000);
    }

    #[test]
    fn memtables_per_drange_is_never_zero() {
        let c = RangeConfig {
            num_dranges: 64,
            max_memtables: 8,
            ..Default::default()
        };
        assert_eq!(c.memtables_per_drange(), 1);
        let c = RangeConfig {
            num_dranges: 4,
            max_memtables: 32,
            ..Default::default()
        };
        assert_eq!(c.memtables_per_drange(), 8);
    }

    #[test]
    fn availability_policy_accounting() {
        assert_eq!(AvailabilityPolicy::None.space_overhead(3), 0.0);
        assert_eq!(AvailabilityPolicy::Replicate(2).space_overhead(3), 1.0);
        assert!((AvailabilityPolicy::Parity.space_overhead(3) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(AvailabilityPolicy::Hybrid.metadata_replicas(), 3);
        assert!(AvailabilityPolicy::Hybrid.uses_parity());
        assert_eq!(AvailabilityPolicy::Replicate(3).data_copies(), 3);
    }

    #[test]
    fn log_policy_accessors() {
        assert!(!LogPolicy::Disabled.enabled());
        assert!(LogPolicy::Persistent.durable());
        assert_eq!(LogPolicy::InMemoryReplicated { replicas: 3 }.memory_replicas(), 3);
        assert!(LogPolicy::PersistentWithMemory { replicas: 1 }.durable());
    }

    #[test]
    fn memory_budget_is_delta_times_tau() {
        let c = RangeConfig {
            max_memtables: 4,
            memtable_size_bytes: 1024,
            ..Default::default()
        };
        assert_eq!(c.memory_budget_bytes(), 4096);
    }

    #[test]
    fn disk_profiles() {
        let hdd = DiskConfig::hard_disk();
        assert!(hdd.seek_micros > 0);
        let ram = DiskConfig::tmpfs();
        assert_eq!(ram.seek_micros, 0);
        let scaled = DiskConfig::scaled(50, 2000);
        assert_eq!(scaled.bandwidth_bytes_per_sec, 50_000_000);
    }
}
