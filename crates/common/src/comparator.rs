//! Key comparators.
//!
//! Nova-LSM (like LevelDB) sorts keys "based on the application specified
//! comparison operator" (Section 2.1). The default is bytewise ordering; a
//! trait object allows applications to plug in their own ordering, and the
//! SSTable builder uses [`Comparator::find_shortest_separator`] to shorten
//! index-block keys.

use std::cmp::Ordering;
use std::sync::Arc;

/// An application-specified total order over user keys.
pub trait Comparator: Send + Sync {
    /// A name recorded in manifests so that a database is never reopened with
    /// a different ordering.
    fn name(&self) -> &'static str;

    /// Compare two user keys.
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering;

    /// Return a key `k` with `start <= k < limit` that is as short as
    /// possible. Used to shrink index-block entries; returning `start`
    /// unchanged is always correct.
    fn find_shortest_separator(&self, start: &[u8], limit: &[u8]) -> Vec<u8> {
        let _ = limit;
        start.to_vec()
    }

    /// Return a key `k >= key` that is as short as possible. Used for the
    /// last entry of an index block.
    fn find_short_successor(&self, key: &[u8]) -> Vec<u8> {
        key.to_vec()
    }
}

/// Shared, reference-counted comparator handle.
pub type ComparatorRef = Arc<dyn Comparator>;

/// Lexicographic byte-wise ordering — the default comparator.
#[derive(Debug, Default, Clone, Copy)]
pub struct BytewiseComparator;

impl Comparator for BytewiseComparator {
    fn name(&self) -> &'static str {
        "nova.BytewiseComparator"
    }

    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    fn find_shortest_separator(&self, start: &[u8], limit: &[u8]) -> Vec<u8> {
        // Find the length of the common prefix.
        let min_len = start.len().min(limit.len());
        let mut diff = 0;
        while diff < min_len && start[diff] == limit[diff] {
            diff += 1;
        }
        if diff >= min_len {
            // One key is a prefix of the other; do not shorten.
            return start.to_vec();
        }
        let byte = start[diff];
        if byte < 0xff && byte + 1 < limit[diff] {
            let mut out = start[..=diff].to_vec();
            out[diff] += 1;
            debug_assert!(self.compare(&out, limit) == Ordering::Less);
            return out;
        }
        start.to_vec()
    }

    fn find_short_successor(&self, key: &[u8]) -> Vec<u8> {
        for (i, &b) in key.iter().enumerate() {
            if b != 0xff {
                let mut out = key[..=i].to_vec();
                out[i] += 1;
                return out;
            }
        }
        key.to_vec()
    }
}

/// Obtain the default bytewise comparator as a shared handle.
pub fn bytewise() -> ComparatorRef {
    Arc::new(BytewiseComparator)
}

/// A comparator that orders keys as big-endian unsigned integers when both
/// parse, falling back to bytewise ordering otherwise. Useful for numeric
/// workloads such as YCSB's zero-padded keys (where it agrees with bytewise
/// ordering) and documented here mainly as an example of a custom ordering.
#[derive(Debug, Default, Clone, Copy)]
pub struct NumericComparator;

impl Comparator for NumericComparator {
    fn name(&self) -> &'static str {
        "nova.NumericComparator"
    }

    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        let pa = std::str::from_utf8(a).ok().and_then(|s| s.parse::<u128>().ok());
        let pb = std::str::from_utf8(b).ok().and_then(|s| s.parse::<u128>().ok());
        match (pa, pb) {
            (Some(x), Some(y)) => x.cmp(&y),
            _ => a.cmp(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bytewise_basic_ordering() {
        let c = BytewiseComparator;
        assert_eq!(c.compare(b"a", b"b"), Ordering::Less);
        assert_eq!(c.compare(b"b", b"a"), Ordering::Greater);
        assert_eq!(c.compare(b"abc", b"abc"), Ordering::Equal);
        assert_eq!(c.compare(b"ab", b"abc"), Ordering::Less);
    }

    #[test]
    fn shortest_separator_is_between_start_and_limit() {
        let c = BytewiseComparator;
        let sep = c.find_shortest_separator(b"abcdefg", b"abzzzzz");
        assert!(c.compare(b"abcdefg", &sep) != Ordering::Greater);
        assert!(c.compare(&sep, b"abzzzzz") == Ordering::Less);
        assert!(sep.len() <= 7);

        // Prefix case: cannot shorten.
        let sep = c.find_shortest_separator(b"abc", b"abcd");
        assert_eq!(sep, b"abc".to_vec());
    }

    #[test]
    fn short_successor_is_geq() {
        let c = BytewiseComparator;
        let succ = c.find_short_successor(b"hello");
        assert!(c.compare(&succ, b"hello") != Ordering::Less);
        // All 0xff cannot be shortened.
        let succ = c.find_short_successor(&[0xff, 0xff]);
        assert_eq!(succ, vec![0xff, 0xff]);
    }

    #[test]
    fn numeric_comparator_orders_numbers() {
        let c = NumericComparator;
        assert_eq!(c.compare(b"9", b"10"), Ordering::Less);
        assert_eq!(c.compare(b"0010", b"9"), Ordering::Greater);
        // Falls back to bytes for non-numeric input.
        assert_eq!(c.compare(b"x", b"y"), Ordering::Less);
    }

    proptest! {
        #[test]
        fn prop_separator_invariant(
            start in proptest::collection::vec(any::<u8>(), 1..24),
            limit in proptest::collection::vec(any::<u8>(), 1..24),
        ) {
            let c = BytewiseComparator;
            prop_assume!(c.compare(&start, &limit) == Ordering::Less);
            let sep = c.find_shortest_separator(&start, &limit);
            prop_assert!(c.compare(&start, &sep) != Ordering::Greater);
            prop_assert!(c.compare(&sep, &limit) == Ordering::Less);
        }

        #[test]
        fn prop_successor_invariant(key in proptest::collection::vec(any::<u8>(), 0..24)) {
            let c = BytewiseComparator;
            let succ = c.find_short_successor(&key);
            prop_assert!(c.compare(&succ, &key) != Ordering::Less);
        }
    }
}
