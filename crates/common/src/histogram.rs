//! Latency histograms and throughput time series used by the experiment
//! harness to report the paper's metrics (average / p95 / p99 response
//! times, throughput over time).

use parking_lot::Mutex;
use std::time::Duration;

/// A log-bucketed latency histogram. Buckets grow geometrically from 1 µs so
/// that percentile estimates stay within a few percent of the true value
/// across six orders of magnitude while the structure remains a fixed-size
/// array that is cheap to merge.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u64,
    min_micros: u64,
    max_micros: u64,
}

/// Number of buckets: value `v` µs lands in bucket `floor(log_{1.2}(v)) + 1`.
const NUM_BUCKETS: usize = 128;
const GROWTH: f64 = 1.2;

fn bucket_for(micros: u64) -> usize {
    if micros == 0 {
        return 0;
    }
    let idx = ((micros as f64).ln() / GROWTH.ln()).floor() as usize + 1;
    idx.min(NUM_BUCKETS - 1)
}

fn bucket_representative(idx: usize) -> f64 {
    if idx == 0 {
        return 1.0;
    }
    // Geometric mean of the bucket's bounds [GROWTH^idx, GROWTH^(idx+1)).
    GROWTH.powf(idx as f64 + 0.5)
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
        }
    }

    /// Record a latency observation.
    pub fn record(&mut self, latency: Duration) {
        self.record_micros(latency.as_micros() as u64);
    }

    /// Record a latency observation given in microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        self.buckets[bucket_for(micros)] += 1;
        self.count += 1;
        self.sum_micros += micros;
        self.min_micros = self.min_micros.min(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 if empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Maximum observed latency in microseconds.
    pub fn max_micros(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_micros
        }
    }

    /// Minimum observed latency in microseconds.
    pub fn min_micros(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_micros
        }
    }

    /// Estimate the latency at percentile `p` (0.0–100.0) in microseconds.
    pub fn percentile_micros(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let threshold = (p.clamp(0.0, 100.0) / 100.0) * self.count as f64;
        let mut seen = 0.0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c as f64;
            if seen >= threshold {
                return bucket_representative(idx)
                    .min(self.max_micros as f64)
                    .max(self.min_micros as f64);
            }
        }
        self.max_micros as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.min_micros = self.min_micros.min(other.min_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// A one-line human readable summary (mean / p95 / p99 / max, in ms).
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.2}ms p95={:.2}ms p99={:.2}ms max={:.2}ms",
            self.count,
            self.mean_micros() / 1000.0,
            self.percentile_micros(95.0) / 1000.0,
            self.percentile_micros(99.0) / 1000.0,
            self.max_micros() as f64 / 1000.0
        )
    }
}

/// A thread-safe histogram that can be shared across worker threads.
#[derive(Debug, Default)]
pub struct SharedHistogram {
    inner: Mutex<Histogram>,
}

impl SharedHistogram {
    /// Create an empty shared histogram.
    pub fn new() -> Self {
        SharedHistogram {
            inner: Mutex::new(Histogram::new()),
        }
    }

    /// Record an observation.
    pub fn record(&self, latency: Duration) {
        self.inner.lock().record(latency);
    }

    /// Record an observation in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.inner.lock().record_micros(micros);
    }

    /// Snapshot the current contents.
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }

    /// Merge a thread-local histogram into this shared one.
    pub fn merge(&self, other: &Histogram) {
        self.inner.lock().merge(other);
    }
}

/// A time series of throughput samples (operations per second per interval),
/// used to regenerate the paper's throughput-over-time charts (Figures 2 and
/// 20).
#[derive(Debug, Clone, Default)]
pub struct ThroughputSeries {
    samples: Vec<(f64, f64)>,
}

impl ThroughputSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample: `elapsed_secs` since the start of the experiment and
    /// the throughput observed over the last interval.
    pub fn push(&mut self, elapsed_secs: f64, ops_per_sec: f64) {
        self.samples.push((elapsed_secs, ops_per_sec));
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Mean throughput across all samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, t)| t).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak throughput across all samples.
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|(_, t)| *t).fold(0.0, f64::max)
    }

    /// Fraction of samples whose throughput is below `frac` of the mean —
    /// a proxy for the paper's "percentage of experiment time spent in write
    /// stalls".
    pub fn fraction_below(&self, frac: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let threshold = self.mean() * frac;
        self.samples.iter().filter(|(_, t)| *t < threshold).count() as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_micros(), 0.0);
        assert_eq!(h.percentile_micros(99.0), 0.0);
        assert_eq!(h.max_micros(), 0);
        assert_eq!(h.min_micros(), 0);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record_micros(i);
        }
        let p50 = h.percentile_micros(50.0);
        let p95 = h.percentile_micros(95.0);
        let p99 = h.percentile_micros(99.0);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max_micros() as f64);
        // Log-bucketing keeps estimates within ~20% of the true percentile.
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.25, "p50 estimate {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.25, "p99 estimate {p99}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record_micros(100);
        h.record_micros(300);
        assert_eq!(h.mean_micros(), 200.0);
        assert_eq!(h.min_micros(), 100);
        assert_eq!(h.max_micros(), 300);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_micros(10);
        b.record_micros(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_micros(), 10);
        assert_eq!(a.max_micros(), 1000);
        assert!(!a.summary().is_empty());
    }

    #[test]
    fn shared_histogram_is_thread_safe() {
        use std::sync::Arc;
        let h = Arc::new(SharedHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_micros(t * 1000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 4000);
    }

    #[test]
    fn throughput_series_statistics() {
        let mut s = ThroughputSeries::new();
        s.push(1.0, 100.0);
        s.push(2.0, 0.0);
        s.push(3.0, 200.0);
        assert_eq!(s.samples().len(), 3);
        assert_eq!(s.mean(), 100.0);
        assert_eq!(s.peak(), 200.0);
        // One of three samples (the zero) is below 10% of the mean.
        assert!((s.fraction_below(0.1) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn record_duration_api() {
        let mut h = Histogram::new();
        h.record(Duration::from_millis(2));
        assert_eq!(h.count(), 1);
        assert!(h.mean_micros() >= 2000.0);
    }
}
