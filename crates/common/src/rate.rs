//! Lightweight counters used for resource accounting across components:
//! per-node CPU busy time, per-disk utilization, bytes moved, and generic
//! operation counters. These feed the utilization numbers quoted throughout
//! the paper's evaluation ("disk bandwidth utilization lower than 20%", "CPU
//! utilization of the first LTC is higher than 90%").

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter that is cheap to update from many
/// threads.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the counter, saturating at `u64::MAX`.
    ///
    /// The fast path is a single `fetch_add`; only in the astronomically
    /// long run where the counter would wrap does the correction kick in,
    /// pinning the value at `u64::MAX` instead of silently restarting near
    /// zero (a wrapped byte counter reads as an idle component).
    pub fn add(&self, delta: u64) {
        let old = self.value.fetch_add(delta, Ordering::Relaxed);
        if old > u64::MAX - delta {
            self.value.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Accumulates busy time (in nanoseconds) so utilization can be computed as
/// busy / elapsed. Used for simulated disks and simulated per-node CPU.
#[derive(Debug, Default)]
pub struct BusyTime {
    busy_nanos: AtomicU64,
}

impl BusyTime {
    /// Create a new accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the resource was busy for `d`.
    pub fn add(&self, d: Duration) {
        self.busy_nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record busy time in nanoseconds, saturating at `u64::MAX` (≈584 years
    /// of busy time) rather than wrapping.
    pub fn add_nanos(&self, nanos: u64) {
        let old = self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        if old > u64::MAX - nanos {
            self.busy_nanos.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Total busy nanoseconds.
    pub fn busy_nanos(&self) -> u64 {
        self.busy_nanos.load(Ordering::Relaxed)
    }

    /// Utilization in `[0, 1]` over a wall-clock window of `elapsed`.
    ///
    /// Values above 1.0 indicate the resource was saturated with queued work
    /// (multiple requests' service time overlapped the window); callers
    /// usually clamp for display.
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        let e = elapsed.as_nanos() as u64;
        if e == 0 {
            return 0.0;
        }
        self.busy_nanos() as f64 / e as f64
    }

    /// Reset the accumulator, returning the previous busy nanoseconds.
    pub fn take(&self) -> u64 {
        self.busy_nanos.swap(0, Ordering::Relaxed)
    }
}

/// A bundle of counters describing the work done by a component; cheap to
/// share behind an `Arc` and snapshot for reporting.
#[derive(Debug, Default)]
pub struct ComponentStats {
    /// Operations served (gets, puts, scans, block reads…).
    pub ops: Counter,
    /// Bytes read from storage or the fabric.
    pub bytes_read: Counter,
    /// Bytes written to storage or the fabric.
    pub bytes_written: Counter,
    /// Simulated CPU busy time attributed to this component.
    pub cpu: BusyTime,
    /// Number of times the component stalled a caller.
    pub stalls: Counter,
    /// Total time callers spent stalled.
    pub stall_time: BusyTime,
}

impl ComponentStats {
    /// Create a zeroed stats bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Human-readable snapshot.
    ///
    /// Utilization ratios over a zero or sub-millisecond window are
    /// meaningless (a single queued request makes them explode towards
    /// infinity), so short windows report `n/a` instead of a percentage.
    pub fn summary(&self, elapsed: Duration) -> String {
        let util = |busy: &BusyTime| {
            if elapsed < Duration::from_millis(1) {
                "n/a".to_string()
            } else {
                format!("{:.1}%", busy.utilization(elapsed) * 100.0)
            }
        };
        format!(
            "ops={} read={}B written={}B cpu_util={} stalls={} stall_frac={}",
            self.ops.get(),
            self.bytes_read.get(),
            self.bytes_written.get(),
            util(&self.cpu),
            self.stalls.get(),
            util(&self.stall_time),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn busy_time_utilization() {
        let b = BusyTime::new();
        b.add(Duration::from_millis(500));
        assert!((b.utilization(Duration::from_secs(1)) - 0.5).abs() < 1e-9);
        b.add_nanos(500_000_000);
        assert!((b.utilization(Duration::from_secs(1)) - 1.0).abs() < 1e-9);
        assert_eq!(b.utilization(Duration::ZERO), 0.0);
        assert_eq!(b.take(), 1_000_000_000);
        assert_eq!(b.busy_nanos(), 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);

        let b = BusyTime::new();
        b.add_nanos(u64::MAX);
        b.add_nanos(1);
        assert_eq!(b.busy_nanos(), u64::MAX);
    }

    #[test]
    fn summary_guards_short_windows() {
        let s = ComponentStats::new();
        s.cpu.add(Duration::from_millis(500));
        let text = s.summary(Duration::ZERO);
        assert!(text.contains("cpu_util=n/a"), "zero window: {text}");
        let text = s.summary(Duration::from_micros(100));
        assert!(text.contains("stall_frac=n/a"), "short window: {text}");
        let text = s.summary(Duration::from_secs(1));
        assert!(text.contains("cpu_util=50.0%"), "normal window: {text}");
    }

    #[test]
    fn component_stats_summary_mentions_everything() {
        let s = ComponentStats::new();
        s.ops.add(10);
        s.bytes_read.add(100);
        s.bytes_written.add(200);
        s.stalls.incr();
        let text = s.summary(Duration::from_secs(1));
        assert!(text.contains("ops=10"));
        assert!(text.contains("read=100B"));
        assert!(text.contains("written=200B"));
        assert!(text.contains("stalls=1"));
    }
}
