//! Monotonic clock abstraction.
//!
//! Components take a [`Clock`] so that tests and the deterministic simulation
//! mode can substitute a manually-advanced clock, while production code uses
//! the real monotonic clock.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of monotonic time.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (but fixed) epoch.
    fn now_nanos(&self) -> u64;

    /// Sleep for (or account) the given duration.
    fn sleep(&self, d: Duration);
}

/// Shared clock handle.
pub type ClockRef = Arc<dyn Clock>;

/// The real monotonic clock.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemClock {
    /// Create a clock anchored at the moment of construction.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A manually-advanced clock for tests and the accounting-only simulation
/// mode. `sleep` advances virtual time instead of blocking.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: Mutex<u64>,
}

impl ManualClock {
    /// Create a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        *self.nanos.lock() += d.as_nanos() as u64;
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        *self.nanos.lock()
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// Obtain the default system clock as a shared handle.
pub fn system_clock() -> ClockRef {
    Arc::new(SystemClock::new())
}

/// Obtain a manual clock as a shared handle, along with a typed reference for
/// advancing it.
pub fn manual_clock() -> (ClockRef, Arc<ManualClock>) {
    let c = Arc::new(ManualClock::new());
    (c.clone() as ClockRef, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn system_clock_sleep_advances_time() {
        let c = SystemClock::new();
        let a = c.now_nanos();
        c.sleep(Duration::from_millis(2));
        assert!(c.now_nanos() >= a + 1_000_000);
    }

    #[test]
    fn manual_clock_only_advances_when_told() {
        let (clock, handle) = manual_clock();
        assert_eq!(clock.now_nanos(), 0);
        handle.advance(Duration::from_micros(5));
        assert_eq!(clock.now_nanos(), 5_000);
        clock.sleep(Duration::from_micros(5));
        assert_eq!(clock.now_nanos(), 10_000);
    }
}
