//! The per-cluster metrics facade: operation timers, layer timers, and the
//! slow-op ring. One `Arc<Metrics>` is created per cluster and threaded into
//! every component; components cache it at construction.
//!
//! # Cost model
//!
//! With metrics **disabled** every timer constructor is a single branch and
//! carries `None` — no clock read, no atomics, nothing on drop. With metrics
//! **enabled** a timer costs two clock reads plus four relaxed atomic adds,
//! and a thread-local add for layer attribution. `fig27_obs_overhead` holds
//! the enabled path to ≤5% end-to-end overhead.
//!
//! # Layer attribution
//!
//! Operation timers open a *frame* on the calling thread; layer timers that
//! complete while a frame is open add their elapsed time to it. When the
//! operation timer drops, the frame becomes the per-layer breakdown of a
//! [`SlowOp`] if the operation exceeded the slow threshold. Work that runs on
//! other threads (scatter-gather shards, background flushes) still lands in
//! the global per-layer histograms but is not attributed to the client op's
//! frame.

use crate::hist::{AtomicHistogram, HistogramSnapshot};
use crate::registry::{Registry, RegistrySnapshot};
use crate::slowop::{SlowOp, SlowOpRing};
use crate::{Layer, OpKind};
use nova_common::config::MetricsConfig;
use nova_common::rate::Counter;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

struct Frame {
    open: bool,
    layer_micros: [u64; Layer::COUNT],
}

thread_local! {
    static FRAME: RefCell<Frame> = const {
        RefCell::new(Frame {
            open: false,
            layer_micros: [0; Layer::COUNT],
        })
    };
}

/// The cluster-wide metrics hub.
pub struct Metrics {
    enabled: bool,
    slow_threshold_micros: u64,
    registry: Registry,
    ops: [Arc<AtomicHistogram>; OpKind::COUNT],
    layers: [Arc<AtomicHistogram>; Layer::COUNT],
    slow_ring: SlowOpRing,
    slow_count: Arc<Counter>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics").field("enabled", &self.enabled).finish()
    }
}

impl Metrics {
    /// Build a metrics hub from configuration.
    pub fn new(config: &MetricsConfig) -> Arc<Self> {
        let registry = Registry::new();
        let ops = OpKind::ALL.map(|k| registry.histogram(&format!("op.{}.micros", k.name())));
        let layers = Layer::ALL.map(|l| registry.histogram(&format!("layer.{}.micros", l.name())));
        let slow_count = registry.counter("slow_ops.total");
        Arc::new(Metrics {
            enabled: config.enabled,
            slow_threshold_micros: config.slow_op_threshold_micros,
            registry,
            ops,
            layers,
            slow_ring: SlowOpRing::new(config.slow_op_capacity),
            slow_count,
        })
    }

    /// A hub with recording enabled at default thresholds.
    pub fn enabled() -> Arc<Self> {
        Self::new(&MetricsConfig::default())
    }

    /// A hub whose timers are no-ops (the overhead baseline). The registry
    /// itself still works, so components can register handles
    /// unconditionally.
    pub fn disabled() -> Arc<Self> {
        Self::new(&MetricsConfig::disabled())
    }

    /// True if timers record.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The slow-op threshold in microseconds.
    pub fn slow_threshold_micros(&self) -> u64 {
        self.slow_threshold_micros
    }

    /// Time one client-visible operation. Drop the returned timer when the
    /// operation completes.
    #[inline]
    pub fn op(&self, kind: OpKind) -> OpTimer<'_> {
        if !self.enabled {
            return OpTimer {
                metrics: self,
                kind,
                start: None,
                owns_frame: false,
            };
        }
        let owns_frame = FRAME.with(|f| {
            let mut f = f.borrow_mut();
            if f.open {
                false
            } else {
                f.open = true;
                f.layer_micros = [0; Layer::COUNT];
                true
            }
        });
        OpTimer {
            metrics: self,
            kind,
            start: Some(Instant::now()),
            owns_frame,
        }
    }

    /// Time one layer crossing. Drop the returned timer when the layer's
    /// work completes.
    #[inline]
    pub fn layer(&self, layer: Layer) -> LayerTimer<'_> {
        LayerTimer {
            metrics: self,
            layer,
            start: if self.enabled { Some(Instant::now()) } else { None },
        }
    }

    /// Record a pre-measured operation latency (used when the caller already
    /// timed the work, e.g. replaying a batch).
    pub fn record_op_micros(&self, kind: OpKind, micros: u64) {
        if self.enabled {
            self.ops[kind.index()].record(micros);
        }
    }

    /// Get or create a named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Get or create a named gauge.
    pub fn gauge(&self, name: &str) -> Arc<crate::registry::Gauge> {
        self.registry.gauge(name)
    }

    /// Get or create a named histogram.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        self.registry.histogram(name)
    }

    /// Snapshot of one operation kind's latency distribution.
    pub fn op_snapshot(&self, kind: OpKind) -> HistogramSnapshot {
        self.ops[kind.index()].snapshot()
    }

    /// Snapshot of one layer's latency distribution.
    pub fn layer_snapshot(&self, layer: Layer) -> HistogramSnapshot {
        self.layers[layer.index()].snapshot()
    }

    /// Latency distribution merged across every operation kind.
    pub fn all_ops_snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for h in &self.ops {
            merged.merge(&h.snapshot());
        }
        merged
    }

    /// The retained slow operations, oldest first.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.slow_ring.recent()
    }

    /// Total operations that ever exceeded the slow threshold.
    pub fn slow_op_count(&self) -> u64 {
        self.slow_count.get()
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }
}

/// Times one client operation; records on drop.
pub struct OpTimer<'a> {
    metrics: &'a Metrics,
    kind: OpKind,
    start: Option<Instant>,
    owns_frame: bool,
}

impl Drop for OpTimer<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let micros = start.elapsed().as_micros() as u64;
        self.metrics.ops[self.kind.index()].record(micros);
        if self.owns_frame {
            let layer_micros = FRAME.with(|f| {
                let mut f = f.borrow_mut();
                f.open = false;
                std::mem::replace(&mut f.layer_micros, [0; Layer::COUNT])
            });
            if micros >= self.metrics.slow_threshold_micros {
                self.metrics.slow_ring.push(self.kind, micros, layer_micros);
                self.metrics.slow_count.incr();
            }
        }
    }
}

/// Times one layer crossing; records on drop.
pub struct LayerTimer<'a> {
    metrics: &'a Metrics,
    layer: Layer,
    start: Option<Instant>,
}

impl Drop for LayerTimer<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let micros = start.elapsed().as_micros() as u64;
        self.metrics.layers[self.layer.index()].record(micros);
        FRAME.with(|f| {
            let mut f = f.borrow_mut();
            if f.open {
                f.layer_micros[self.layer.index()] += micros;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_timer_records_and_captures_layers() {
        let m = Metrics::new(&MetricsConfig {
            enabled: true,
            slow_op_threshold_micros: 0, // everything is "slow"
            slow_op_capacity: 8,
        });
        {
            let _op = m.op(OpKind::Get);
            let _layer = m.layer(Layer::Ltc);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(m.op_snapshot(OpKind::Get).count(), 1);
        assert_eq!(m.layer_snapshot(Layer::Ltc).count(), 1);
        let slow = m.slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].kind, OpKind::Get);
        assert!(slow[0].total_micros >= 1_000);
        assert!(slow[0].layer_micros[Layer::Ltc.index()] >= 1_000);
        assert_eq!(m.slow_op_count(), 1);
    }

    #[test]
    fn fast_ops_stay_out_of_the_slow_ring() {
        let m = Metrics::new(&MetricsConfig {
            enabled: true,
            slow_op_threshold_micros: 1_000_000,
            slow_op_capacity: 8,
        });
        drop(m.op(OpKind::Put));
        assert_eq!(m.op_snapshot(OpKind::Put).count(), 1);
        assert!(m.slow_ops().is_empty());
    }

    #[test]
    fn nested_ops_do_not_steal_the_frame() {
        let m = Metrics::new(&MetricsConfig {
            enabled: true,
            slow_op_threshold_micros: 0,
            slow_op_capacity: 8,
        });
        {
            let _outer = m.op(OpKind::MultiGet);
            {
                let _inner = m.op(OpKind::Get);
                let _layer = m.layer(Layer::Cache);
            }
        }
        // Both ops recorded; only the outer one owned the frame, so exactly
        // one slow op (the outer) carries the cache layer time.
        assert_eq!(m.op_snapshot(OpKind::Get).count(), 1);
        assert_eq!(m.op_snapshot(OpKind::MultiGet).count(), 1);
        let slow = m.slow_ops();
        let outer: Vec<_> = slow.iter().filter(|o| o.kind == OpKind::MultiGet).collect();
        assert_eq!(outer.len(), 1);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let m = Metrics::disabled();
        {
            let _op = m.op(OpKind::Get);
            let _layer = m.layer(Layer::Ltc);
        }
        assert!(m.op_snapshot(OpKind::Get).is_empty());
        assert!(m.layer_snapshot(Layer::Ltc).is_empty());
        assert!(m.slow_ops().is_empty());
        assert!(!m.is_enabled());
    }

    #[test]
    fn registry_access_works_either_way() {
        let m = Metrics::disabled();
        m.counter("x").add(2);
        m.gauge("y").set(3);
        m.histogram("z").record(4);
        let snap = m.snapshot();
        assert_eq!(snap.counters["x"], 2);
        assert_eq!(snap.gauges["y"], 3);
        assert_eq!(snap.histograms["z"].count(), 1);
    }
}
