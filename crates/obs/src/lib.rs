//! `nova-obs`: unified observability for Nova-LSM.
//!
//! The paper's central claim — that disaggregating the LSM-tree into LTC,
//! LogC and StoC components lets each resource scale independently — is only
//! verifiable if every component reports its own latency and throughput
//! breakdown. This crate provides the shared instrumentation layer:
//!
//! * [`AtomicHistogram`] — a lock-free log-linear latency histogram with
//!   p50/p90/p99/p999 percentiles and exactly-mergeable snapshots.
//! * [`Registry`] — a named registry of counters, gauges and histograms;
//!   registration takes a lock once, the returned handles are lock-free.
//! * [`Metrics`] — the per-cluster facade: per-operation latency
//!   ([`OpKind`]), per-layer latency ([`Layer`]) recorded at every component
//!   boundary, and a bounded [`SlowOpRing`] capturing a per-layer timing
//!   breakdown for operations over a configurable threshold.
//!
//! The hot path is a handful of `Relaxed` atomic adds plus one clock read per
//! timer; with [`MetricsConfig::disabled`] every timer collapses to a single
//! branch (no clock read at all). The `fig27_obs_overhead` bench holds the
//! instrumented hot path to ≤5% overhead versus the disabled baseline.

mod hist;
mod metrics;
mod registry;
mod slowop;

pub use hist::{AtomicHistogram, HistogramSnapshot};
pub use metrics::{LayerTimer, Metrics, OpTimer};
pub use nova_common::config::MetricsConfig;
pub use registry::{Gauge, Registry, RegistrySnapshot};
pub use slowop::{SlowOp, SlowOpRing};

/// The layers an operation crosses on its way down the disaggregated stack.
///
/// Layer timings are *inclusive*: time attributed to [`Layer::Ltc`] contains
/// the LogC / StoC / cache time spent beneath it, mirroring how the layers
/// nest at run time. Subtract inner layers for an exclusive view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// The LTC range engine: memtable and SSTable work for one operation.
    Ltc,
    /// LogC group commit: enqueue-to-durable latency of a log append.
    Logc,
    /// StoC block I/O: one fabric round trip plus simulated disk service.
    StocIo,
    /// Block cache probes and fills at the LTC.
    Cache,
}

impl Layer {
    /// Number of layers (sizes the per-layer arrays).
    pub const COUNT: usize = 4;
    /// Every layer, in stack order (outermost first).
    pub const ALL: [Layer; Layer::COUNT] = [Layer::Ltc, Layer::Logc, Layer::StocIo, Layer::Cache];

    /// Stable metric-name fragment for this layer.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Ltc => "ltc",
            Layer::Logc => "logc",
            Layer::StocIo => "stoc_io",
            Layer::Cache => "cache",
        }
    }

    /// Position of this layer in per-layer arrays such as
    /// [`SlowOp::layer_micros`].
    pub fn index(self) -> usize {
        match self {
            Layer::Ltc => 0,
            Layer::Logc => 1,
            Layer::StocIo => 2,
            Layer::Cache => 3,
        }
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The client-visible operation types whose end-to-end latency is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Get,
    Put,
    Delete,
    Scan,
    MultiGet,
    PutBatch,
}

impl OpKind {
    /// Number of operation kinds (sizes the per-op arrays).
    pub const COUNT: usize = 6;
    /// Every operation kind.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Get,
        OpKind::Put,
        OpKind::Delete,
        OpKind::Scan,
        OpKind::MultiGet,
        OpKind::PutBatch,
    ];

    /// Stable metric-name fragment for this operation kind.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Put => "put",
            OpKind::Delete => "delete",
            OpKind::Scan => "scan",
            OpKind::MultiGet => "multi_get",
            OpKind::PutBatch => "put_batch",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            OpKind::Get => 0,
            OpKind::Put => 1,
            OpKind::Delete => 2,
            OpKind::Scan => 3,
            OpKind::MultiGet => 4,
            OpKind::PutBatch => 5,
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
