//! A lock-free log-linear latency histogram (HDR-lite).
//!
//! Values (microseconds throughout Nova-LSM) are bucketed by octave, each
//! octave split into 16 linear sub-buckets, so any reported percentile is
//! within 6.25% of the recorded value. The record path is four `Relaxed`
//! atomic operations — no locks, no floating point — which is what lets the
//! instrumented hot path stay within the ≤5% overhead contract.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave. A power of two; the relative bucket width
/// (and therefore the worst-case percentile error) is `1 / SUB`.
const SUB: usize = 16;
/// `log2(SUB)`.
const SUB_BITS: u32 = 4;
/// Buckets covering the full `u64` range: values below `SUB` get exact
/// buckets, then one group of `SUB` buckets per remaining octave.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Bucket index for a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros();
        let shift = octave - SUB_BITS;
        let sub = (v >> shift) as usize - SUB;
        (shift as usize + 1) * SUB + sub
    }
}

/// Lowest value mapping to bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let shift = i / SUB - 1;
        let sub = (i % SUB) as u64;
        (SUB as u64 + sub) << shift
    }
}

/// Representative value reported for bucket `i`: the bucket midpoint, which
/// halves the worst-case error versus reporting either edge.
fn bucket_mid(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        bucket_low(i) + (1u64 << (i / SUB - 1)) / 2
    }
}

/// A histogram whose record path is entirely `Relaxed` atomics, safe to share
/// behind an `Arc` across every thread in the cluster.
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            buckets,
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free; no sample is ever lost, though a
    /// concurrent [`AtomicHistogram::snapshot`] may observe it partially
    /// (e.g. counted in a bucket but not yet in the sum).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.count())
            .finish()
    }
}

/// An owned copy of a histogram's state. Snapshots merge exactly (bucket-wise
/// addition), so merging is associative and commutative: merging per-thread
/// or per-node snapshots in any order yields identical percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (in `[0, 100]`), within 6.25% of the
    /// exact order statistic. Returns 0 when empty.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.value_at_percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.value_at_percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.value_at_percentile(99.9)
    }

    /// Merge another snapshot into this one. Exact: bucket-wise addition
    /// plus min/max/sum/count combination, so the operation is associative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// One-line summary: `n=1000 mean=12.3us p50=10 p99=40 max=55`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={} p90={} p99={} p999={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }

    /// JSON object fragment with the derived statistics (not raw buckets).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean\": {:.2}, \"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
             \"p999\": {}, \"max\": {}}}",
            self.count,
            self.mean(),
            self.min(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Deterministic pseudo-random stream (splitmix64).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn buckets_cover_u64_without_gaps() {
        // Every bucket's low edge maps back to that bucket, and the value
        // just below it maps to the previous bucket.
        for i in 1..NUM_BUCKETS {
            let low = bucket_low(i);
            assert_eq!(bucket_index(low), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(low - 1), i - 1, "value below bucket {i}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn percentiles_match_exact_reference_within_bound() {
        let h = AtomicHistogram::new();
        let mut rng = Rng(42);
        let mut values: Vec<u64> = (0..10_000)
            .map(|_| {
                // A latency-shaped mixture: mostly fast, a heavy tail.
                let r = rng.next();
                match r % 100 {
                    0..=89 => 20 + r % 200,
                    90..=98 => 1_000 + r % 9_000,
                    _ => 50_000 + r % 500_000,
                }
            })
            .collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), 10_000);
        for p in [50.0, 90.0, 99.0, 99.9] {
            let exact = exact_percentile(&values, p) as f64;
            let est = snap.value_at_percentile(p) as f64;
            let err = (est - exact).abs() / exact.max(1.0);
            assert!(
                err <= 0.0625,
                "p{p}: estimated {est} vs exact {exact} (relative error {err:.4})"
            );
        }
        assert_eq!(snap.min(), values[0]);
        assert_eq!(snap.max(), *values.last().unwrap());
    }

    #[test]
    fn merge_is_associative_and_has_identity() {
        let mut rng = Rng(7);
        let mut parts = Vec::new();
        for _ in 0..3 {
            let h = AtomicHistogram::new();
            for _ in 0..1_000 {
                h.record(rng.next() % 1_000_000);
            }
            parts.push(h.snapshot());
        }
        let (a, b, c) = (&parts[0], &parts[1], &parts[2]);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // Identity element.
        let mut with_identity = a.clone();
        with_identity.merge(&HistogramSnapshot::empty());
        assert_eq!(&with_identity, a);
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        let h = Arc::new(AtomicHistogram::new());
        let threads = 8;
        let per_thread = 25_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * 1_000 + i % 100);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), threads * per_thread);
        let expected_sum: u64 = (0..threads)
            .map(|t| (0..per_thread).map(|i| t * 1_000 + i % 100).sum::<u64>())
            .sum();
        assert_eq!(snap.sum(), expected_sum);
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let snap = AtomicHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn summary_and_json_render() {
        let h = AtomicHistogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert!(snap.summary().contains("n=3"));
        assert!(snap.to_json().contains("\"count\": 3"));
    }
}
