//! A bounded ring of the most recent slow operations, each carrying the
//! per-layer timing breakdown captured while it ran. Pushes happen only for
//! operations over the configured threshold, so the per-slot mutexes are
//! effectively uncontended; readers copy the ring out.

use crate::{Layer, OpKind};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One slow operation: what it was, how long it took end to end, and how the
/// time split across the stack's layers (inclusive, see [`Layer`]).
#[derive(Debug, Clone)]
pub struct SlowOp {
    /// Monotonic sequence number (global across the ring's lifetime).
    pub seq: u64,
    /// The operation type.
    pub kind: OpKind,
    /// End-to-end latency in microseconds.
    pub total_micros: u64,
    /// Microseconds attributed to each layer, indexed like [`Layer::ALL`].
    pub layer_micros: [u64; Layer::COUNT],
}

impl SlowOp {
    /// Human-readable one-liner, e.g.
    /// `#12 get 15000us [ltc=14800 logc=0 stoc_io=14500 cache=120]`.
    pub fn summary(&self) -> String {
        let layers: Vec<String> = Layer::ALL
            .iter()
            .map(|l| format!("{}={}", l.name(), self.layer_micros[l.index()]))
            .collect();
        format!(
            "#{} {} {}us [{}]",
            self.seq,
            self.kind.name(),
            self.total_micros,
            layers.join(" ")
        )
    }
}

/// A fixed-capacity ring of recent slow operations.
#[derive(Debug)]
pub struct SlowOpRing {
    slots: Vec<Mutex<Option<SlowOp>>>,
    next: AtomicU64,
}

impl SlowOpRing {
    /// Create a ring holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SlowOpRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total slow operations ever pushed (may exceed capacity).
    pub fn total_recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Push a slow op, overwriting the oldest entry once full. Returns the
    /// sequence number assigned to it.
    pub fn push(&self, kind: OpKind, total_micros: u64, layer_micros: [u64; Layer::COUNT]) -> u64 {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock() = Some(SlowOp {
            seq,
            kind,
            total_micros,
            layer_micros,
        });
        seq
    }

    /// Copy out the retained slow ops, oldest first.
    pub fn recent(&self) -> Vec<SlowOp> {
        let mut ops: Vec<SlowOp> = self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        ops.sort_by_key(|o| o.seq);
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_most_recent_in_order() {
        let ring = SlowOpRing::new(4);
        for i in 0..10u64 {
            ring.push(OpKind::Get, 1_000 + i, [i, 0, 0, 0]);
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 4);
        let seqs: Vec<u64> = recent.iter().map(|o| o.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(ring.total_recorded(), 10);
        assert!(recent[0].summary().contains("get"));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = SlowOpRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(OpKind::Put, 5, [0; Layer::COUNT]);
        assert_eq!(ring.recent().len(), 1);
    }
}
