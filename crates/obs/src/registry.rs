//! A named registry of counters, gauges and histograms.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a lock once per
//! name and returns an `Arc` handle; all subsequent updates through the
//! handle are lock-free. Components cache their handles at construction so
//! the registry lock never appears on a hot path.

use crate::hist::{AtomicHistogram, HistogramSnapshot};
use nova_common::rate::Counter;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A last-value-wins instantaneous measurement (queue depth, resident bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Create a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current value.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The registry. Names are dot-separated paths (`"op.get.micros"`,
/// `"ltc.0.writes"`); `BTreeMap` keeps snapshots deterministically ordered.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        )
    }

    /// A point-in-time copy of every metric in the registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// An owned copy of every metric, suitable for serialization or merging
/// across nodes.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Merge another snapshot into this one: counters and gauges add,
    /// histograms merge bucket-wise (associative, like the histograms
    /// themselves).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(v);
        }
    }

    /// Serialize as JSON (histograms render their derived statistics, not
    /// raw buckets).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        out.push_str(&counters.join(", "));
        out.push_str("},\n  \"gauges\": {");
        let gauges: Vec<String> = self.gauges.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        out.push_str(&gauges.join(", "));
        out.push_str("},\n  \"histograms\": {\n");
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {}", v.to_json()))
            .collect();
        out.push_str(&hists.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("ops");
        let b = r.counter("ops");
        a.add(3);
        b.add(4);
        assert_eq!(r.counter("ops").get(), 7);

        let g = r.gauge("depth");
        g.set(9);
        assert_eq!(r.gauge("depth").get(), 9);

        r.histogram("lat").record(100);
        assert_eq!(r.histogram("lat").count(), 1);
    }

    #[test]
    fn snapshot_contains_everything_and_merges() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.gauge("g").set(5);
        r.histogram("h").record(10);
        let mut snap = r.snapshot();
        assert_eq!(snap.counters["a"], 1);
        assert_eq!(snap.gauges["g"], 5);
        assert_eq!(snap.histograms["h"].count(), 1);

        let other = r.snapshot();
        snap.merge(&other);
        assert_eq!(snap.counters["a"], 2);
        assert_eq!(snap.histograms["h"].count(), 2);

        let json = snap.to_json();
        assert!(json.contains("\"a\": 2"));
        assert!(json.contains("\"h\": {\"count\": 2"));
    }
}
