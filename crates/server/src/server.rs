//! The TCP server: accept loop, per-connection protocol handler, tenant
//! auth, admission control and backpressure.

use nova_common::config::ServerConfig;
use nova_common::{Error, ReadOptions, Result};
use nova_lsm::{NovaClient, NovaCluster, TokenBucket, ValueProjection};
use nova_obs::{AtomicHistogram, Gauge};
use nova_proto::{error_to_wire, read_frame, write_message, Message};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use nova_common::rate::Counter;

/// One authenticated tenant: its shared secret, privileges and admission
/// bucket. The bucket meters *operations* per second (a batch of n keys
/// costs n tokens), reusing the supervisor's [`TokenBucket`].
struct TenantState {
    token: String,
    admin: bool,
    bucket: Option<Mutex<TokenBucket>>,
}

/// Cached `server.*` metric handles (the registry lock is taken once, at
/// server start).
struct ServerMetrics {
    connections_total: Arc<Counter>,
    active_connections: Arc<Gauge>,
    shed_connections: Arc<Counter>,
    shed_backpressure: Arc<Counter>,
    shed_ratelimit: Arc<Counter>,
    auth_failures: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    op_get: Arc<AtomicHistogram>,
    op_put: Arc<AtomicHistogram>,
    op_delete: Arc<AtomicHistogram>,
    op_multi_get: Arc<AtomicHistogram>,
    op_put_batch: Arc<AtomicHistogram>,
    op_scan: Arc<AtomicHistogram>,
    op_index_scan: Arc<AtomicHistogram>,
}

impl ServerMetrics {
    fn new(cluster: &NovaCluster) -> Self {
        let m = cluster.metrics();
        ServerMetrics {
            connections_total: m.counter("server.connections_total"),
            active_connections: m.gauge("server.active_connections"),
            shed_connections: m.counter("server.shed.connections"),
            shed_backpressure: m.counter("server.shed.backpressure"),
            shed_ratelimit: m.counter("server.shed.ratelimit"),
            auth_failures: m.counter("server.auth_failures"),
            protocol_errors: m.counter("server.protocol_errors"),
            op_get: m.histogram("server.op.get.micros"),
            op_put: m.histogram("server.op.put.micros"),
            op_delete: m.histogram("server.op.delete.micros"),
            op_multi_get: m.histogram("server.op.multi_get.micros"),
            op_put_batch: m.histogram("server.op.put_batch.micros"),
            op_scan: m.histogram("server.op.scan.micros"),
            op_index_scan: m.histogram("server.op.index_scan.micros"),
        }
    }
}

struct Shared {
    cluster: Arc<NovaCluster>,
    client: NovaClient,
    config: ServerConfig,
    tenants: HashMap<String, TenantState>,
    active: AtomicUsize,
    shutdown: AtomicBool,
    metrics: ServerMetrics,
    /// `try_clone`d handles of live connection streams so shutdown can
    /// unblock readers parked in `read_frame`.
    conn_streams: Mutex<Vec<TcpStream>>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// The network front door. Binds on [`NovaServer::start`], serves until
/// [`NovaServer::shutdown`] (or drop).
pub struct NovaServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl NovaServer {
    /// Bind `config.listen_addr` (port 0 binds an ephemeral port — see
    /// [`NovaServer::local_addr`]) and start serving `cluster` through a
    /// fresh [`NovaClient`].
    pub fn start(cluster: Arc<NovaCluster>, config: &ServerConfig) -> Result<NovaServer> {
        config.validate().map_err(Error::InvalidArgument)?;
        let addr = config.listen_addr.to_socket_addrs()?.next().ok_or_else(|| {
            Error::InvalidArgument(format!("unresolvable listen_addr {}", config.listen_addr))
        })?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;

        let tenants = config
            .tenants
            .iter()
            .map(|t| {
                let bucket = (t.ops_per_sec > 0).then(|| {
                    Mutex::new(TokenBucket::new(
                        nova_common::clock::system_clock(),
                        t.ops_per_sec,
                    ))
                });
                (
                    t.name.clone(),
                    TenantState {
                        token: t.token.clone(),
                        admin: t.admin,
                        bucket,
                    },
                )
            })
            .collect();

        let shared = Arc::new(Shared {
            client: NovaClient::new(Arc::clone(&cluster)),
            metrics: ServerMetrics::new(&cluster),
            cluster,
            config: config.clone(),
            tenants,
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            conn_streams: Mutex::new(Vec::new()),
            conn_handles: Mutex::new(Vec::new()),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("nova-server-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))
            .map_err(|e| Error::Io(e.to_string()))?;

        Ok(NovaServer {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (useful when the configuration asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Stop accepting, unblock and join every connection thread.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept thread parked in accept().
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Unblock readers parked in read_frame.
        for stream in self.shared.conn_streams.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = self.shared.conn_handles.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for NovaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.metrics.connections_total.incr();
        // Bounded accept pool: beyond the bound, shed with a retryable
        // busy frame instead of queueing the connection.
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.metrics.shed_connections.incr();
            let busy = Error::Busy {
                retry_after_micros: shared.config.retry_after_micros,
            };
            let mut stream = stream;
            let _ = write_message(&mut stream, 0, &Message::Error(error_to_wire(&busy)));
            continue;
        }
        let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.metrics.active_connections.set(active as u64);
        if let Ok(clone) = stream.try_clone() {
            shared.conn_streams.lock().push(clone);
        }
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("nova-server-conn".into())
            .spawn(move || {
                serve_connection(&conn_shared, stream);
                let active = conn_shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
                conn_shared.metrics.active_connections.set(active as u64);
            });
        match handle {
            Ok(handle) => shared.conn_handles.lock().push(handle),
            Err(_) => {
                let active = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
                shared.metrics.active_connections.set(active as u64);
            }
        }
    }
}

/// The per-connection session: which tenant (if any) has authenticated.
enum Session<'a> {
    /// No handshake yet.
    Unauthenticated,
    /// Handshake accepted.
    Tenant(&'a TenantState),
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(reader) => std::io::BufReader::new(reader),
        Err(_) => return,
    };
    let mut writer = std::io::BufWriter::new(&mut stream);
    let mut session = Session::Unauthenticated;

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(Error::ProtocolError(msg)) => {
                // Framing is poisoned: report in-band (best effort) and
                // close this connection. Other connections are unaffected.
                shared.metrics.protocol_errors.incr();
                let err = Error::ProtocolError(msg);
                let _ = write_message(&mut writer, 0, &Message::Error(error_to_wire(&err)));
                return;
            }
            // Clean close or transport error.
            Err(_) => return,
        };
        let response = match Message::decode(frame.kind, &frame.payload) {
            Ok(msg) => handle_message(shared, &mut session, msg),
            Err(e) => {
                // The frame itself was intact (header + checksum verified),
                // so the stream is still framed: answer in-band and keep
                // serving this connection.
                shared.metrics.protocol_errors.incr();
                Message::Error(error_to_wire(&e))
            }
        };
        if write_message(&mut writer, frame.request_id, &response).is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

fn handle_message<'a>(shared: &'a Shared, session: &mut Session<'a>, msg: Message) -> Message {
    // The handshake and liveness probes bypass tenancy checks.
    match &msg {
        Message::Ping => return Message::Pong,
        Message::Hello { tenant, token } => {
            return match shared.tenants.get(tenant) {
                Some(state) if state.token == *token => {
                    *session = Session::Tenant(state);
                    Message::HelloOk { admin: state.admin }
                }
                _ => {
                    shared.metrics.auth_failures.incr();
                    Message::Error(error_to_wire(&Error::AuthFailed(format!(
                        "unknown tenant '{tenant}' or bad token"
                    ))))
                }
            };
        }
        _ => {}
    }

    // Resolve the acting tenant: the handshake's, or the implicit
    // anonymous admin tenant when authentication is not required.
    let tenant: Option<&TenantState> = match session {
        Session::Tenant(state) => Some(state),
        Session::Unauthenticated if shared.config.require_auth => {
            shared.metrics.auth_failures.incr();
            return Message::Error(error_to_wire(&Error::AuthFailed(
                "hello handshake required before operations".into(),
            )));
        }
        Session::Unauthenticated => None,
    };
    let admin = tenant.map(|t| t.admin).unwrap_or(true);

    // Admission control: meter operations against the tenant's bucket.
    let cost = match &msg {
        Message::Get { .. } | Message::Put { .. } | Message::Delete { .. } | Message::ScanChunk { .. } => 1,
        Message::MultiGet { keys, .. } => keys.len() as u64,
        Message::PutBatch { pairs, .. } => pairs.len() as u64,
        Message::IndexScan { limit, .. } => (*limit).max(1),
        _ => 0,
    };
    if cost > 0 {
        if let Some(bucket) = tenant.and_then(|t| t.bucket.as_ref()) {
            if !bucket.lock().try_consume(cost) {
                shared.metrics.shed_ratelimit.incr();
                return Message::Error(error_to_wire(&Error::Busy {
                    retry_after_micros: shared.config.retry_after_micros,
                }));
            }
        }
    }

    // Backpressure: shed writes while the cluster's flush/compaction
    // backlog sits at or above the threshold.
    let is_write = matches!(
        &msg,
        Message::Put { .. } | Message::Delete { .. } | Message::PutBatch { .. }
    );
    if is_write && shared.cluster.background_backlog() >= shared.config.shed_backlog_threshold {
        shared.metrics.shed_backpressure.incr();
        return Message::Error(error_to_wire(&Error::Busy {
            retry_after_micros: shared.config.retry_after_micros,
        }));
    }

    dispatch(shared, msg, admin)
}

/// Execute one operation against the in-process client and build the
/// response frame. `StaleConfig` retries happen inside `NovaClient`'s
/// routing loop — they never cross the wire.
fn dispatch(shared: &Shared, msg: Message, admin: bool) -> Message {
    let client = &shared.client;
    let start = Instant::now();
    let (histogram, response) = match msg {
        Message::Get { options, key } => (
            Some(&shared.metrics.op_get),
            client
                .get_with_options(&key, &options)
                .map(|value| Message::Value {
                    value: value.map(|v| v.to_vec()),
                }),
        ),
        Message::Put { key, value } => (
            Some(&shared.metrics.op_put),
            client.put(&key, &value).map(|()| Message::Ok),
        ),
        Message::Delete { key } => (
            Some(&shared.metrics.op_delete),
            client.delete(&key).map(|()| Message::Ok),
        ),
        Message::MultiGet { options, keys } => (
            Some(&shared.metrics.op_multi_get),
            client
                .multi_get_with_options(&keys, &options)
                .map(|values| Message::Values {
                    values: values.into_iter().map(|v| v.map(|b| b.to_vec())).collect(),
                }),
        ),
        Message::PutBatch { options, pairs } => (
            Some(&shared.metrics.op_put_batch),
            client.put_batch_with(&pairs, &options).map(|()| Message::Ok),
        ),
        Message::ScanChunk { options, start, end } => (
            Some(&shared.metrics.op_scan),
            scan_chunk(client, options, &start, end.as_deref()),
        ),
        Message::IndexScan {
            name,
            sec_start,
            sec_end,
            resume,
            limit,
        } => (
            Some(&shared.metrics.op_index_scan),
            client
                .index_scan_chunk(
                    &name,
                    sec_start.as_deref(),
                    sec_end.as_deref(),
                    resume.as_deref(),
                    (limit as usize).clamp(1, 4096),
                )
                .map(|(entries, resume)| Message::IndexEntries {
                    entries: entries.into_iter().map(|e| (e.secondary, e.primary)).collect(),
                    resume,
                }),
        ),
        Message::CreateIndex { name, projection } => {
            if admin {
                let projection = match projection {
                    None => ValueProjection::Whole,
                    Some((offset, len)) => ValueProjection::Slice {
                        offset: offset as usize,
                        len: len as usize,
                    },
                };
                (
                    None,
                    shared
                        .cluster
                        .create_index(&name, projection)
                        .map(|_id| Message::Ok),
                )
            } else {
                (None, Err(admin_required("create_index")))
            }
        }
        Message::DropIndex { name } => {
            if admin {
                (None, shared.cluster.drop_index(&name).map(|()| Message::Ok))
            } else {
                (None, Err(admin_required("drop_index")))
            }
        }
        Message::Health => {
            if admin {
                (
                    None,
                    Ok(Message::Report {
                        json: shared.cluster.health_report().to_json(),
                    }),
                )
            } else {
                (None, Err(admin_required("health")))
            }
        }
        Message::MetricsSnapshot => {
            if admin {
                (
                    None,
                    Ok(Message::Report {
                        json: shared.cluster.metrics_snapshot().to_json(),
                    }),
                )
            } else {
                (None, Err(admin_required("metrics_snapshot")))
            }
        }
        // Response kinds arriving as requests, and Hello/Ping (handled by
        // the caller), are protocol violations.
        other => (
            None,
            Err(Error::ProtocolError(format!(
                "frame kind {:#04x} is not a request",
                other.kind() as u8
            ))),
        ),
    };
    if let Some(histogram) = histogram {
        histogram.record(start.elapsed().as_micros() as u64);
    }
    match response {
        Ok(response) => response,
        Err(e) => {
            if matches!(e, Error::ProtocolError(_)) {
                shared.metrics.protocol_errors.incr();
            }
            Message::Error(error_to_wire(&e))
        }
    }
}

fn admin_required(what: &str) -> Error {
    Error::AuthFailed(format!("'{what}' requires an admin tenant"))
}

/// Collect up to `options.limit` entries of `[start, end)` — one chunk of a
/// streaming scan. The client resumes with the successor of the last key.
fn scan_chunk(
    client: &NovaClient,
    options: ReadOptions,
    start: &[u8],
    end: Option<&[u8]>,
) -> Result<Message> {
    let limit = options.limit.max(1);
    let mut entries = Vec::with_capacity(limit.min(1024));
    for entry in client.scan_range(start, end, options) {
        entries.push(entry?);
        if entries.len() >= limit {
            break;
        }
    }
    Ok(Message::Entries { entries })
}
