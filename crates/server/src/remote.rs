//! The remote client: a connection-pooled, retrying wire-protocol client
//! that mirrors the `NovaClient` operation surface and implements the YCSB
//! driver's `KvInterface`, so existing workloads drive a remote server
//! unchanged.

use crate::key_successor;
use nova_common::types::Entry;
use nova_common::{Error, ReadOptions, Result, WriteOptions};
use nova_proto::{read_message, wire_to_error, write_message, Message};
use nova_ycsb::KvInterface;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How many times a call transparently retries a retryable `busy` shed
/// before surfacing [`Error::Busy`] to the caller.
const DEFAULT_BUSY_RETRIES: usize = 8;

/// A client for a remote `nova-server`.
///
/// Connections are pooled (one checkout per in-flight call, dialing on
/// demand), authenticated with the configured tenant on dial, and replaced
/// transparently when a pooled connection turns out to be dead. Retryable
/// `busy` sheds are retried with the server-suggested backoff, up to a
/// bounded number of attempts; every other error surfaces typed (see
/// [`nova_proto::wire_to_error`]).
pub struct RemoteClient {
    addr: String,
    tenant: Option<(String, String)>,
    pool: Mutex<Vec<TcpStream>>,
    next_request_id: AtomicU64,
    busy_retries: usize,
}

impl std::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteClient")
            .field("addr", &self.addr)
            .field("tenant", &self.tenant.as_ref().map(|(name, _)| name))
            .field("pooled", &self.pool.lock().len())
            .finish()
    }
}

impl RemoteClient {
    /// Connect anonymously (servers with `require_auth = false`).
    pub fn connect(addr: &str) -> Result<RemoteClient> {
        Self::build(addr, None)
    }

    /// Connect and authenticate as `tenant` with `token`.
    pub fn connect_as(addr: &str, tenant: &str, token: &str) -> Result<RemoteClient> {
        Self::build(addr, Some((tenant.to_string(), token.to_string())))
    }

    fn build(addr: &str, tenant: Option<(String, String)>) -> Result<RemoteClient> {
        let client = RemoteClient {
            addr: addr.to_string(),
            tenant,
            pool: Mutex::new(Vec::new()),
            next_request_id: AtomicU64::new(1),
            busy_retries: DEFAULT_BUSY_RETRIES,
        };
        // Dial (and authenticate) eagerly so connect errors surface here,
        // not on the first operation.
        let stream = client.dial()?;
        client.pool.lock().push(stream);
        Ok(client)
    }

    /// Override the bounded `busy` retry budget (`0` surfaces every shed).
    pub fn with_busy_retries(mut self, retries: usize) -> Self {
        self.busy_retries = retries;
        self
    }

    fn dial(&self) -> Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)?;
        let _ = stream.set_nodelay(true);
        if let Some((tenant, token)) = &self.tenant {
            let mut stream = &stream;
            let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
            write_message(
                &mut stream,
                id,
                &Message::Hello {
                    tenant: tenant.clone(),
                    token: token.clone(),
                },
            )?;
            match read_message(&mut stream)? {
                (_, Message::HelloOk { .. }) => {}
                (_, Message::Error(e)) => return Err(wire_to_error(&e)),
                (_, other) => {
                    return Err(Error::ProtocolError(format!(
                        "unexpected handshake response kind {:#04x}",
                        other.kind() as u8
                    )))
                }
            }
        }
        Ok(stream)
    }

    fn checkout(&self) -> Result<TcpStream> {
        if let Some(stream) = self.pool.lock().pop() {
            return Ok(stream);
        }
        self.dial()
    }

    /// One request/response exchange, with transparent replacement of dead
    /// pooled connections and bounded retry of `busy` sheds.
    fn call(&self, msg: &Message) -> Result<Message> {
        let mut io_retried = false;
        let mut busy_attempts = 0usize;
        loop {
            let stream = self.checkout()?;
            let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
            let exchange = (|| {
                let mut s = &stream;
                write_message(&mut s, id, msg)?;
                read_message(&mut s)
            })();
            match exchange {
                Ok((rid, response)) => {
                    if rid != id && rid != 0 {
                        // A response for a different request poisons the
                        // stream; drop the connection.
                        return Err(Error::ProtocolError(format!(
                            "response id {rid} does not match request id {id}"
                        )));
                    }
                    match response {
                        Message::Error(wire) => {
                            let e = wire_to_error(&wire);
                            // Error frames leave the stream framed; reuse it.
                            self.pool.lock().push(stream);
                            if let Error::Busy { retry_after_micros } = &e {
                                if busy_attempts < self.busy_retries {
                                    busy_attempts += 1;
                                    std::thread::sleep(Duration::from_micros(
                                        (*retry_after_micros).max(100) * busy_attempts as u64,
                                    ));
                                    continue;
                                }
                            }
                            return Err(e);
                        }
                        response => {
                            self.pool.lock().push(stream);
                            return Ok(response);
                        }
                    }
                }
                // A dead pooled connection (server restarted, idle timeout):
                // drop it and retry once on a fresh dial. Write operations
                // are idempotent upserts, so the single replay is safe.
                Err(Error::Io(_)) if !io_retried => {
                    io_retried = true;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn expect_ok(&self, msg: &Message) -> Result<()> {
        match self.call(msg)? {
            Message::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<()> {
        match self.call(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Read a key.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_with_options(key, &ReadOptions::default())
    }

    /// Read a key honoring per-operation [`ReadOptions`].
    pub fn get_with_options(&self, key: &[u8], options: &ReadOptions) -> Result<Option<Vec<u8>>> {
        match self.call(&Message::Get {
            options: *options,
            key: key.to_vec(),
        })? {
            Message::Value { value } => Ok(value),
            other => Err(unexpected(&other)),
        }
    }

    /// Write a key-value pair.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.expect_ok(&Message::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })
    }

    /// Delete a key.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.expect_ok(&Message::Delete { key: key.to_vec() })
    }

    /// Scatter-gather read: one optional value per key, in input order.
    pub fn multi_get<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<Vec<Option<Vec<u8>>>> {
        self.multi_get_with_options(keys, &ReadOptions::default())
    }

    /// [`RemoteClient::multi_get`] honoring per-operation [`ReadOptions`].
    pub fn multi_get_with_options<K: AsRef<[u8]>>(
        &self,
        keys: &[K],
        options: &ReadOptions,
    ) -> Result<Vec<Option<Vec<u8>>>> {
        match self.call(&Message::MultiGet {
            options: *options,
            keys: keys.iter().map(|k| k.as_ref().to_vec()).collect(),
        })? {
            Message::Values { values } => Ok(values),
            other => Err(unexpected(&other)),
        }
    }

    /// Batched write.
    pub fn put_batch<K: AsRef<[u8]>, V: AsRef<[u8]>>(&self, items: &[(K, V)]) -> Result<()> {
        self.put_batch_with(items, &WriteOptions::default())
    }

    /// [`RemoteClient::put_batch`] honoring per-batch [`WriteOptions`].
    pub fn put_batch_with<K: AsRef<[u8]>, V: AsRef<[u8]>>(
        &self,
        items: &[(K, V)],
        options: &WriteOptions,
    ) -> Result<()> {
        self.expect_ok(&Message::PutBatch {
            options: *options,
            pairs: items
                .iter()
                .map(|(k, v)| (k.as_ref().to_vec(), v.as_ref().to_vec()))
                .collect(),
        })
    }

    /// Stream the live entries of `[start, end)` (an absent `end` scans to
    /// the end of the keyspace) as a lazy cursor. Each chunk is one
    /// `scan_chunk` request of `options.limit` entries; the cursor resumes
    /// at the successor of the last key it received, mirroring the
    /// in-process `ScanCursor`.
    pub fn scan_range<'a>(
        &'a self,
        start: &[u8],
        end: Option<&[u8]>,
        options: ReadOptions,
    ) -> RemoteScanCursor<'a> {
        RemoteScanCursor {
            client: self,
            options,
            cursor: start.to_vec(),
            end: end.map(|e| e.to_vec()),
            buffer: VecDeque::new(),
            done: false,
        }
    }

    /// Collect up to `limit` entries starting at `start`.
    pub fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        for entry in self.scan_range(
            start,
            None,
            ReadOptions::default().with_chunk(limit.clamp(1, 1024)),
        ) {
            out.push(entry?);
            if out.len() >= limit {
                break;
            }
        }
        Ok(out)
    }

    /// Admin: create a secondary index named `name` and synchronously
    /// backfill it (requires an admin tenant). `projection` is `None` to
    /// index the whole value, or `Some((offset, len))` to index a fixed
    /// slice of it.
    pub fn create_index(&self, name: &str, projection: Option<(u64, u64)>) -> Result<()> {
        self.expect_ok(&Message::CreateIndex {
            name: name.to_string(),
            projection,
        })
    }

    /// Admin: drop the secondary index named `name` and purge its entries
    /// (requires an admin tenant).
    pub fn drop_index(&self, name: &str) -> Result<()> {
        self.expect_ok(&Message::DropIndex {
            name: name.to_string(),
        })
    }

    /// Stream `(secondary, primary)` pairs of the index named `name` whose
    /// secondary keys fall in `[sec_start, sec_end)` (`None` = unbounded)
    /// as a lazy cursor. Each chunk is one `index_scan` request of
    /// `chunk` entries; the cursor resumes with the server's opaque token.
    pub fn index_scan<'a>(
        &'a self,
        name: &str,
        sec_start: Option<&[u8]>,
        sec_end: Option<&[u8]>,
        chunk: usize,
    ) -> RemoteIndexScanCursor<'a> {
        RemoteIndexScanCursor {
            client: self,
            name: name.to_string(),
            sec_start: sec_start.map(|s| s.to_vec()),
            sec_end: sec_end.map(|s| s.to_vec()),
            resume: None,
            chunk: chunk.clamp(1, 4096),
            buffer: VecDeque::new(),
            done: false,
        }
    }

    /// Admin: the cluster health report as JSON (requires an admin tenant).
    pub fn health_json(&self) -> Result<String> {
        match self.call(&Message::Health)? {
            Message::Report { json } => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: the metrics registry snapshot as JSON (requires an admin
    /// tenant).
    pub fn metrics_json(&self) -> Result<String> {
        match self.call(&Message::MetricsSnapshot)? {
            Message::Report { json } => Ok(json),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(msg: &Message) -> Error {
    Error::ProtocolError(format!("unexpected response kind {:#04x}", msg.kind() as u8))
}

/// A lazy streaming scan over a remote server; yields entries in key order,
/// pulling one `scan_chunk` request at a time.
pub struct RemoteScanCursor<'a> {
    client: &'a RemoteClient,
    options: ReadOptions,
    cursor: Vec<u8>,
    end: Option<Vec<u8>>,
    buffer: VecDeque<Entry>,
    done: bool,
}

impl Iterator for RemoteScanCursor<'_> {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(entry) = self.buffer.pop_front() {
                return Some(Ok(entry));
            }
            if self.done {
                return None;
            }
            let response = self.client.call(&Message::ScanChunk {
                options: self.options,
                start: self.cursor.clone(),
                end: self.end.clone(),
            });
            let entries = match response {
                Ok(Message::Entries { entries }) => entries,
                Ok(other) => {
                    self.done = true;
                    return Some(Err(unexpected(&other)));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            // Fewer entries than the chunk limit means the interval is
            // exhausted; otherwise resume after the last key.
            if entries.len() < self.options.limit.max(1) {
                self.done = true;
            } else if let Some(last) = entries.last() {
                self.cursor = key_successor(&last.key);
            }
            if entries.is_empty() && self.buffer.is_empty() {
                self.done = true;
                return None;
            }
            self.buffer.extend(entries);
        }
    }
}

/// A lazy streaming secondary-index scan over a remote server; yields
/// `(secondary, primary)` pairs in index order, pulling one `index_scan`
/// request at a time and resuming with the server's opaque token.
pub struct RemoteIndexScanCursor<'a> {
    client: &'a RemoteClient,
    name: String,
    sec_start: Option<Vec<u8>>,
    sec_end: Option<Vec<u8>>,
    resume: Option<Vec<u8>>,
    chunk: usize,
    buffer: VecDeque<(Vec<u8>, Vec<u8>)>,
    done: bool,
}

impl Iterator for RemoteIndexScanCursor<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(pair) = self.buffer.pop_front() {
                return Some(Ok(pair));
            }
            if self.done {
                return None;
            }
            let response = self.client.call(&Message::IndexScan {
                name: self.name.clone(),
                sec_start: self.sec_start.clone(),
                sec_end: self.sec_end.clone(),
                resume: self.resume.clone(),
                limit: self.chunk as u64,
            });
            let (entries, resume) = match response {
                Ok(Message::IndexEntries { entries, resume }) => (entries, resume),
                Ok(other) => {
                    self.done = true;
                    return Some(Err(unexpected(&other)));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            // An absent resume token means the scan is exhausted.
            self.resume = resume;
            if self.resume.is_none() {
                self.done = true;
            }
            if entries.is_empty() && self.buffer.is_empty() && self.done {
                return None;
            }
            self.buffer.extend(entries);
        }
    }
}

/// The YCSB driver's store interface, served over the wire: workloads and
/// benches drive a remote server exactly as they drive the in-process
/// client.
impl KvInterface for RemoteClient {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        RemoteClient::put(self, key, value)
    }

    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        RemoteClient::put_batch(self, items)
    }

    fn get(&self, key: &[u8]) -> Result<bool> {
        Ok(RemoteClient::get(self, key)?.is_some())
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<bool>> {
        Ok(RemoteClient::multi_get(self, keys)?
            .into_iter()
            .map(|v| v.is_some())
            .collect())
    }

    fn scan(&self, start_key: &[u8], count: usize) -> Result<usize> {
        let mut seen = 0;
        for entry in self.scan_range(
            start_key,
            None,
            ReadOptions::default().with_chunk(count.clamp(1, 1024)),
        ) {
            entry?;
            seen += 1;
            if seen >= count {
                break;
            }
        }
        Ok(seen)
    }

    fn scan_range(&self, start_key: &[u8], end_key: &[u8], count: usize) -> Result<usize> {
        let mut seen = 0;
        for entry in RemoteClient::scan_range(
            self,
            start_key,
            Some(end_key),
            ReadOptions::default().with_chunk(count.clamp(1, 1024)),
        ) {
            entry?;
            seen += 1;
            if seen >= count {
                break;
            }
        }
        Ok(seen)
    }

    fn secondary_lookup(&self, secondary: &[u8], limit: usize) -> Result<usize> {
        // Exact match: [secondary, successor(secondary)) over the raw
        // secondary-key space, against the workload's well-known index.
        let upper = crate::key_successor(secondary);
        let mut seen = 0;
        for pair in self.index_scan(
            nova_ycsb::SECONDARY_INDEX_NAME,
            Some(secondary),
            Some(&upper),
            limit.clamp(1, 1024),
        ) {
            pair?;
            seen += 1;
            if seen >= limit {
                break;
            }
        }
        Ok(seen)
    }
}
