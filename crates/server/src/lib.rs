//! # nova-server
//!
//! The network front door of the Nova-LSM reproduction: a std-net TCP
//! server speaking the [`nova_proto`] framed wire protocol in front of
//! [`nova_lsm::NovaClient`], plus [`RemoteClient`] — a remote
//! implementation of the YCSB driver's `KvInterface`, so every existing
//! workload and bench drives the server unchanged.
//!
//! Matching the repository's threading style, there is no async runtime:
//! the server runs one accept thread and one thread per connection, with
//! the accept pool bounded by
//! [`nova_common::config::ServerConfig::max_connections`] — connections
//! beyond the bound are refused with a retryable `busy` frame rather than
//! queued unboundedly.
//!
//! Production teeth, all configured through
//! [`nova_common::config::ServerConfig`]:
//!
//! * **Auth**: tenants present a name + shared-secret token in the `hello`
//!   handshake; admin frames (health report, metrics snapshot) require an
//!   admin tenant.
//! * **Admission control**: each tenant is metered by a token bucket
//!   (`ops_per_sec`; a batch of n keys costs n tokens). Overflow is shed
//!   with a retryable `busy` frame carrying a suggested backoff.
//! * **Backpressure**: write requests are shed with `busy` while the
//!   cluster's background backlog (queued + running flush/compaction jobs)
//!   sits at or above `shed_backlog_threshold`.
//!
//! Server-side op latencies, active connections and shed counts land in
//! the cluster's `nova-obs` registry under `server.*` names, so they ride
//! along in `metrics_snapshot()` and the admin frames.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod remote;
mod server;

pub use remote::{RemoteClient, RemoteIndexScanCursor, RemoteScanCursor};
pub use server::NovaServer;

/// The bytewise successor of `key`: the smallest key strictly greater than
/// `key`. Streaming scans resume at `successor(last_returned_key)`.
pub fn key_successor(key: &[u8]) -> Vec<u8> {
    let mut next = Vec::with_capacity(key.len() + 1);
    next.extend_from_slice(key);
    next.push(0);
    next
}
