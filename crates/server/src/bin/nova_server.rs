//! Standalone `nova-server`: start a simulated cluster and serve it over
//! the wire protocol until stdin closes (pipe from a terminal and hit
//! ctrl-d, or kill the process).
//!
//! ```text
//! nova-server [--listen ADDR] [--ltcs N] [--stocs N] [--keys N] [--load]
//!             [--value-size BYTES] [--max-conns N] [--shed-backlog N]
//!             [--require-auth] [--tenant NAME:TOKEN[:OPS_PER_SEC[:admin]]]...
//! ```

use nova_common::config::TenantConfig;
use nova_common::keyspace::encode_key;
use nova_lsm::{presets, NovaClient, NovaCluster};
use nova_server::NovaServer;

fn main() {
    let mut listen = "127.0.0.1:4590".to_string();
    let mut ltcs = 1usize;
    let mut stocs = 1usize;
    let mut keys = 100_000u64;
    let mut value_size = 128usize;
    let mut load = false;
    let mut max_conns = 256usize;
    let mut shed_backlog = u64::MAX;
    let mut require_auth = false;
    let mut tenants: Vec<TenantConfig> = Vec::new();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        match flag.as_str() {
            "--listen" => listen = next(&args, &mut i),
            "--ltcs" => ltcs = parse(&next(&args, &mut i)),
            "--stocs" => stocs = parse(&next(&args, &mut i)),
            "--keys" => keys = parse(&next(&args, &mut i)),
            "--value-size" => value_size = parse(&next(&args, &mut i)),
            "--max-conns" => max_conns = parse(&next(&args, &mut i)),
            "--shed-backlog" => shed_backlog = parse(&next(&args, &mut i)),
            "--load" => load = true,
            "--require-auth" => require_auth = true,
            "--tenant" => tenants.push(parse_tenant(&next(&args, &mut i))),
            "--help" | "-h" => {
                println!(
                    "usage: nova-server [--listen ADDR] [--ltcs N] [--stocs N] [--keys N] [--load]\n\
                     \x20                  [--value-size BYTES] [--max-conns N] [--shed-backlog N]\n\
                     \x20                  [--require-auth] [--tenant NAME:TOKEN[:OPS_PER_SEC[:admin]]]..."
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let mut config = presets::shared_disk(ltcs, stocs, stocs.min(3), keys);
    config.server.listen_addr = listen;
    config.server.max_connections = max_conns;
    config.server.shed_backlog_threshold = shed_backlog;
    config.server.require_auth = require_auth;
    config.server.tenants = tenants;

    let cluster = NovaCluster::start(config.clone()).unwrap_or_else(|e| die(&format!("cluster start: {e}")));
    if load {
        eprintln!("loading {keys} keys x {value_size}B ...");
        let client = NovaClient::new(cluster.clone());
        let value = vec![0xabu8; value_size];
        let mut batch = Vec::with_capacity(256);
        for k in 0..keys {
            batch.push((encode_key(k), value.clone()));
            if batch.len() == 256 {
                client
                    .put_batch(&batch)
                    .unwrap_or_else(|e| die(&format!("load: {e}")));
                batch.clear();
            }
        }
        if !batch.is_empty() {
            client
                .put_batch(&batch)
                .unwrap_or_else(|e| die(&format!("load: {e}")));
        }
    }

    let mut server =
        NovaServer::start(cluster.clone(), &config.server).unwrap_or_else(|e| die(&format!("bind: {e}")));
    println!(
        "nova-server listening on {} (ctrl-d to stop)",
        server.local_addr()
    );

    // Serve until stdin closes.
    let mut sink = String::new();
    while let Ok(n) = std::io::stdin().read_line(&mut sink) {
        if n == 0 {
            break;
        }
        sink.clear();
    }
    eprintln!("shutting down ...");
    server.shutdown();
    cluster.shutdown();
}

fn next(args: &[String], i: &mut usize) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| die(&format!("{} needs a value", args[*i - 1])))
        .clone()
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad numeric value '{s}'")))
}

/// `NAME:TOKEN[:OPS_PER_SEC[:admin]]`
fn parse_tenant(spec: &str) -> TenantConfig {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 2 || parts[0].is_empty() {
        die(&format!(
            "bad --tenant spec '{spec}' (want NAME:TOKEN[:OPS_PER_SEC[:admin]])"
        ));
    }
    TenantConfig {
        name: parts[0].to_string(),
        token: parts[1].to_string(),
        ops_per_sec: parts
            .get(2)
            .filter(|s| !s.is_empty())
            .map(|s| parse(s))
            .unwrap_or(0),
        admin: parts.get(3).is_some_and(|s| *s == "admin"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("nova-server: {msg}");
    std::process::exit(2);
}
