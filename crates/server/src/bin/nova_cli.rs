//! `nova-cli`: a small one-shot / REPL client speaking the wire protocol —
//! the manual smoke tool for `nova-server`.
//!
//! ```text
//! nova-cli [--addr ADDR] [--tenant NAME --token TOKEN] [COMMAND [ARGS...]]
//!
//! Commands:
//!   get KEY            print the value of KEY (or "(nil)")
//!   put KEY VALUE      write KEY = VALUE
//!   del KEY            delete KEY
//!   scan START [N]     print up to N entries (default 10) from START
//!   mkindex NAME [OFF LEN]   create index on whole value, or value[OFF..OFF+LEN] (admin)
//!   rmindex NAME       drop index NAME and purge its entries (admin)
//!   iscan NAME SEC [N] print up to N primaries (default 10) with secondary SEC
//!   health             print the cluster health report (admin)
//!   metrics            print the metrics snapshot (admin)
//!   ping               round-trip liveness probe
//! ```
//!
//! With no command, reads commands from stdin (one per line).

use nova_server::RemoteClient;

fn main() {
    let mut addr = "127.0.0.1:4590".to_string();
    let mut tenant: Option<String> = None;
    let mut token: Option<String> = None;

    let mut args: Vec<String> = std::env::args().skip(1).collect();
    while let Some(flag) = args.first().cloned() {
        match flag.as_str() {
            "--addr" => {
                args.remove(0);
                addr = take_value(&mut args, "--addr");
            }
            "--tenant" => {
                args.remove(0);
                tenant = Some(take_value(&mut args, "--tenant"));
            }
            "--token" => {
                args.remove(0);
                token = Some(take_value(&mut args, "--token"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: nova-cli [--addr ADDR] [--tenant NAME --token TOKEN] [COMMAND [ARGS...]]\n\
                     commands: get KEY | put KEY VALUE | del KEY | scan START [N] | mkindex NAME [OFF LEN] | rmindex NAME | iscan NAME SEC [N] | health | metrics | ping"
                );
                return;
            }
            _ => break,
        }
    }

    let client = match (&tenant, &token) {
        (Some(tenant), Some(token)) => RemoteClient::connect_as(&addr, tenant, token),
        (None, None) => RemoteClient::connect(&addr),
        _ => die("--tenant and --token must be given together"),
    }
    .unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));

    if !args.is_empty() {
        let words: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        std::process::exit(if run_command(&client, &words) { 0 } else { 1 });
    }

    // REPL mode.
    let mut line = String::new();
    loop {
        eprint!("nova> ");
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        if words.is_empty() {
            continue;
        }
        if matches!(words[0], "quit" | "exit") {
            return;
        }
        run_command(&client, &words);
    }
}

fn run_command(client: &RemoteClient, words: &[&str]) -> bool {
    let result = match (words[0], &words[1..]) {
        ("get", [key]) => client.get(key.as_bytes()).map(|value| match value {
            Some(v) => println!("{}", String::from_utf8_lossy(&v)),
            None => println!("(nil)"),
        }),
        ("put", [key, value]) => client
            .put(key.as_bytes(), value.as_bytes())
            .map(|()| println!("OK")),
        ("del", [key]) => client.delete(key.as_bytes()).map(|()| println!("OK")),
        ("scan", [start, rest @ ..]) if rest.len() <= 1 => {
            let limit: usize = rest.first().map(|s| s.parse().unwrap_or(10)).unwrap_or(10);
            client.scan(start.as_bytes(), limit).map(|entries| {
                for entry in &entries {
                    println!(
                        "{} = {}",
                        String::from_utf8_lossy(&entry.key),
                        String::from_utf8_lossy(&entry.value)
                    );
                }
                println!("({} entries)", entries.len());
            })
        }
        ("mkindex", [name]) => client.create_index(name, None).map(|()| println!("OK")),
        ("mkindex", [name, offset, len]) => match (offset.parse::<u64>(), len.parse::<u64>()) {
            (Ok(offset), Ok(len)) => client
                .create_index(name, Some((offset, len)))
                .map(|()| println!("OK")),
            _ => {
                eprintln!("mkindex: OFF and LEN must be integers");
                return false;
            }
        },
        ("rmindex", [name]) => client.drop_index(name).map(|()| println!("OK")),
        ("iscan", [name, secondary, rest @ ..]) if rest.len() <= 1 => {
            let limit: usize = rest.first().map(|s| s.parse().unwrap_or(10)).unwrap_or(10);
            let sec = secondary.as_bytes();
            let upper = {
                let mut upper = sec.to_vec();
                upper.push(0);
                upper
            };
            (|| {
                let mut seen = 0usize;
                for pair in client.index_scan(name, Some(sec), Some(&upper), limit.clamp(1, 1024)) {
                    let (_, primary) = pair?;
                    println!("{}", String::from_utf8_lossy(&primary));
                    seen += 1;
                    if seen >= limit {
                        break;
                    }
                }
                println!("({seen} primaries)");
                Ok(())
            })()
        }
        ("health", []) => client.health_json().map(|json| println!("{json}")),
        ("metrics", []) => client.metrics_json().map(|json| println!("{json}")),
        ("ping", []) => client.ping().map(|()| println!("PONG")),
        ("help", _) => {
            println!("commands: get KEY | put KEY VALUE | del KEY | scan START [N] | mkindex NAME [OFF LEN] | rmindex NAME | iscan NAME SEC [N] | health | metrics | ping | quit");
            Ok(())
        }
        _ => {
            eprintln!("unknown command; try 'help'");
            return false;
        }
    };
    match result {
        Ok(()) => true,
        Err(e) => {
            eprintln!("error: {e}");
            false
        }
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> String {
    if args.is_empty() {
        die(&format!("{flag} needs a value"));
    }
    args.remove(0)
}

fn die(msg: &str) -> ! {
    eprintln!("nova-cli: {msg}");
    std::process::exit(2);
}
