//! # nova-index
//!
//! Ordered secondary indexes for the Nova-LSM reproduction, in the spirit
//! of incremental view maintenance (Berkholz et al., "Answering FO+MOD
//! queries under updates"): each base write pays a small, bounded amount of
//! maintenance work so that value-predicate queries enumerate their results
//! from an ordered index instead of scanning the whole keyspace.
//!
//! The crate is deliberately storage-free. Index entries are ordinary LSM
//! keys under a reserved prefix (see [`codec`]), so the existing memtable /
//! SSTable / group-commit / migration machinery carries them with no new
//! engine code. What lives here:
//!
//! * [`codec`] — the order-preserving composite entry key
//!   (`0xFE ‖ index_id ‖ esc(secondary) ‖ 0x00 0x01 ‖ primary`) and the
//!   scan-bound helpers for secondary ranges and exact matches;
//! * [`IndexCatalog`] / [`IndexSpec`] — immutable, versioned catalog
//!   snapshots, embedded in the coordinator's `Configuration` so catalog
//!   and routing epoch are read under one lock;
//! * [`maintenance_ops`] — the planner mapping one base-record change
//!   (`old` value → `new` value) to the delete-old-entry / put-new-entry
//!   ops the client folds into the same group-commit batch.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod catalog;
pub mod codec;

pub use catalog::{maintenance_ops, IndexCatalog, IndexOp, IndexSpec, IndexState, ValueProjection};
pub use codec::{
    decode_index_key, encode_index_key, index_prefix, index_upper_bound, is_index_key,
    secondary_exact_bounds, secondary_range_bounds, INDEX_KEY_PREFIX,
};

/// One decoded index-scan result: the secondary key an entry matched under
/// and the primary key it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// The (decoded) secondary key.
    pub secondary: Vec<u8>,
    /// The base record's primary key.
    pub primary: Vec<u8>,
}
