//! The index catalog: immutable snapshots of every registered secondary
//! index, carried inside the coordinator's `Configuration` so a client
//! reads the catalog and the routing epoch under one lock — the invariant
//! the create-index catch-up fence relies on.

use crate::codec;
use nova_common::{Error, Result};

/// How an index projects a secondary key out of a base value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueProjection {
    /// The whole value is the secondary key.
    Whole,
    /// A fixed-width slice of the value (`value[offset .. offset + len]`).
    /// Values too short to cover the slice are left unindexed.
    Slice {
        /// Byte offset of the slice.
        offset: usize,
        /// Byte length of the slice.
        len: usize,
    },
}

impl ValueProjection {
    /// The secondary key this projection extracts from `value`, or `None`
    /// if the value is unindexable under this projection.
    pub fn project<'a>(&self, value: &'a [u8]) -> Option<&'a [u8]> {
        match self {
            ValueProjection::Whole => Some(value),
            ValueProjection::Slice { offset, len } => {
                let end = offset.checked_add(*len)?;
                value.get(*offset..end)
            }
        }
    }
}

/// Lifecycle state of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexState {
    /// Registered and maintained by every write, but the backfill of
    /// pre-existing records has not finished: scans would under-report, so
    /// `index_scan` refuses with `IndexNotReady`.
    Backfilling,
    /// Fully built; scans are served.
    Active,
}

/// One registered secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Stable numeric id, allocated at registration; keys the entry codec.
    pub id: u32,
    /// Unique human-readable name (the API handle).
    pub name: String,
    /// How the secondary key is derived from a base value.
    pub projection: ValueProjection,
    /// Lifecycle state.
    pub state: IndexState,
}

/// An immutable catalog snapshot. The coordinator replaces the whole
/// snapshot (behind an `Arc`) on every catalog change and stamps it with
/// the configuration epoch of that change, so two snapshots are equal iff
/// their versions are.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexCatalog {
    /// Configuration epoch at which this snapshot was installed. Writers
    /// compare versions across the per-range routing reads of one logical
    /// operation and re-plan when the catalog moved under them.
    pub version: u64,
    specs: Vec<IndexSpec>,
}

impl IndexCatalog {
    /// The empty catalog (version 0 — older than any installed snapshot).
    pub fn empty() -> Self {
        IndexCatalog::default()
    }

    /// True if no index is registered — the write path's fast-path check.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Every registered index, in registration order.
    pub fn specs(&self) -> &[IndexSpec] {
        &self.specs
    }

    /// Look up an index by name.
    pub fn find(&self, name: &str) -> Option<&IndexSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Look up an index by id.
    pub fn get(&self, id: u32) -> Option<&IndexSpec> {
        self.specs.iter().find(|s| s.id == id)
    }

    /// A new snapshot with `name` registered as a `Backfilling` index.
    /// Allocates the next free id. Fails on a duplicate name.
    pub fn with_index(
        &self,
        name: &str,
        projection: ValueProjection,
        version: u64,
    ) -> Result<(IndexCatalog, u32)> {
        if name.is_empty() {
            return Err(Error::InvalidArgument("index name must not be empty".into()));
        }
        if self.find(name).is_some() {
            return Err(Error::InvalidArgument(format!("index '{name}' already exists")));
        }
        let id = self.specs.iter().map(|s| s.id + 1).max().unwrap_or(0);
        let mut specs = self.specs.clone();
        specs.push(IndexSpec {
            id,
            name: name.to_string(),
            projection,
            state: IndexState::Backfilling,
        });
        Ok((IndexCatalog { version, specs }, id))
    }

    /// A new snapshot with index `id` moved to `state`.
    pub fn with_state(&self, id: u32, state: IndexState, version: u64) -> Result<IndexCatalog> {
        let mut specs = self.specs.clone();
        let spec = specs
            .iter_mut()
            .find(|s| s.id == id)
            .ok_or_else(|| Error::IndexNotFound(format!("index id {id}")))?;
        spec.state = state;
        Ok(IndexCatalog { version, specs })
    }

    /// A new snapshot with index `id` removed.
    pub fn without(&self, id: u32, version: u64) -> Result<IndexCatalog> {
        if self.get(id).is_none() {
            return Err(Error::IndexNotFound(format!("index id {id}")));
        }
        let specs = self.specs.iter().filter(|s| s.id != id).cloned().collect();
        Ok(IndexCatalog { version, specs })
    }
}

/// One index-entry mutation the write path must apply alongside a base
/// write. Entry values are empty — the key carries everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexOp {
    /// The composite entry key.
    pub key: Vec<u8>,
    /// `true` deletes the entry, `false` writes it.
    pub delete: bool,
}

/// Plan the index maintenance for one base-record change: `old` is the
/// value before the write (`None` if absent), `new` the value after
/// (`None` for a delete). Returns delete-old-entry / put-new-entry ops for
/// every registered index whose projected secondary actually changed.
/// Backfilling indexes are maintained too — that is what makes the
/// backfill's catch-up fence sound. Keys already in the index keyspace
/// plan nothing (maintenance never recurses onto its own entries).
pub fn maintenance_ops(
    catalog: &IndexCatalog,
    primary: &[u8],
    old: Option<&[u8]>,
    new: Option<&[u8]>,
) -> Vec<IndexOp> {
    if catalog.is_empty() || codec::is_index_key(primary) {
        return Vec::new();
    }
    let mut ops = Vec::new();
    for spec in catalog.specs() {
        let old_sec = old.and_then(|v| spec.projection.project(v));
        let new_sec = new.and_then(|v| spec.projection.project(v));
        if old_sec == new_sec {
            continue;
        }
        if let Some(sec) = old_sec {
            ops.push(IndexOp {
                key: codec::encode_index_key(spec.id, sec, primary),
                delete: true,
            });
        }
        if let Some(sec) = new_sec {
            ops.push(IndexOp {
                key: codec::encode_index_key(spec.id, sec, primary),
                delete: false,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog_with(name: &str, projection: ValueProjection) -> IndexCatalog {
        IndexCatalog::empty().with_index(name, projection, 1).unwrap().0
    }

    #[test]
    fn registration_allocates_ids_and_rejects_duplicates() {
        let (cat, id0) = IndexCatalog::empty()
            .with_index("by_cat", ValueProjection::Slice { offset: 0, len: 4 }, 3)
            .unwrap();
        assert_eq!(id0, 0);
        assert_eq!(cat.version, 3);
        let (cat, id1) = cat.with_index("by_val", ValueProjection::Whole, 4).unwrap();
        assert_eq!(id1, 1);
        assert!(cat.with_index("by_cat", ValueProjection::Whole, 5).is_err());
        assert!(cat.with_index("", ValueProjection::Whole, 5).is_err());
        assert_eq!(cat.find("by_val").unwrap().state, IndexState::Backfilling);
        let cat = cat.with_state(id1, IndexState::Active, 6).unwrap();
        assert_eq!(cat.get(id1).unwrap().state, IndexState::Active);
        let cat = cat.without(id0, 7).unwrap();
        assert!(cat.find("by_cat").is_none());
        assert!(cat.without(id0, 8).is_err());
        assert!(cat.with_state(99, IndexState::Active, 8).is_err());
        // Dropping the live index frees nothing retroactively: the next id
        // is still past the highest ever allocated id that remains.
        let (_, id2) = cat.with_index("third", ValueProjection::Whole, 9).unwrap();
        assert_eq!(id2, 2);
    }

    #[test]
    fn projections_extract_or_skip() {
        let whole = ValueProjection::Whole;
        assert_eq!(whole.project(b"abc"), Some(&b"abc"[..]));
        let slice = ValueProjection::Slice { offset: 2, len: 3 };
        assert_eq!(slice.project(b"xxcatzz"), Some(&b"cat"[..]));
        assert_eq!(slice.project(b"xxca"), None, "short values are unindexed");
        let overflow = ValueProjection::Slice {
            offset: usize::MAX,
            len: 2,
        };
        assert_eq!(overflow.project(b"abc"), None);
    }

    #[test]
    fn maintenance_plans_only_real_changes() {
        let cat = catalog_with("by_cat", ValueProjection::Slice { offset: 0, len: 3 });
        let pk = b"00000000000000000007";

        // Fresh insert: one put.
        let ops = maintenance_ops(&cat, pk, None, Some(b"cat-payload"));
        assert_eq!(ops.len(), 1);
        assert!(!ops[0].delete);
        assert_eq!(
            codec::decode_index_key(&ops[0].key),
            Some((0, b"cat".to_vec(), pk.to_vec()))
        );

        // Update that moves the secondary: delete old + put new.
        let ops = maintenance_ops(&cat, pk, Some(b"cat-payload"), Some(b"dog-payload"));
        assert_eq!(ops.len(), 2);
        assert!(ops[0].delete && !ops[1].delete);

        // Update that keeps the secondary: nothing.
        assert!(maintenance_ops(&cat, pk, Some(b"cat-old"), Some(b"cat-new")).is_empty());

        // Delete: one entry delete.
        let ops = maintenance_ops(&cat, pk, Some(b"cat-payload"), None);
        assert_eq!(ops.len(), 1);
        assert!(ops[0].delete);

        // Deleting an absent record, short (unindexable) values, index-space
        // keys and the empty catalog all plan nothing.
        assert!(maintenance_ops(&cat, pk, None, None).is_empty());
        assert!(maintenance_ops(&cat, pk, None, Some(b"xy")).is_empty());
        let entry = codec::encode_index_key(0, b"cat", pk);
        assert!(maintenance_ops(&cat, &entry, None, Some(b"cat-payload")).is_empty());
        assert!(maintenance_ops(&IndexCatalog::empty(), pk, None, Some(b"cat-x")).is_empty());
    }

    #[test]
    fn unindexable_transitions_plan_one_sided_ops() {
        let cat = catalog_with("by_cat", ValueProjection::Slice { offset: 0, len: 3 });
        let pk = b"00000000000000000008";
        // Indexable -> too short: delete only.
        let ops = maintenance_ops(&cat, pk, Some(b"cat"), Some(b"xy"));
        assert_eq!(ops.len(), 1);
        assert!(ops[0].delete);
        // Too short -> indexable: put only.
        let ops = maintenance_ops(&cat, pk, Some(b"xy"), Some(b"dog"));
        assert_eq!(ops.len(), 1);
        assert!(!ops[0].delete);
    }
}
