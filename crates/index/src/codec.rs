//! The order-preserving composite key codec.
//!
//! An index entry is an ordinary LSM key built from three parts:
//!
//! ```text
//! [0xFE] ‖ index_id (u32, big-endian) ‖ esc(secondary) ‖ 0x00 0x01 ‖ primary
//! ```
//!
//! * The `0xFE` prefix sorts every index entry *after* the primary keyspace
//!   (primary keys are 20-digit decimal strings, first byte `b'0'..=b'9'`),
//!   so entries live in ordinary ranges — the keyspace partition routes any
//!   non-decimal key to the last range — and survive flush, compaction and
//!   live migration unchanged.
//! * The secondary key is escaped (`0x00` → `0x00 0xFF`) and closed with the
//!   terminator `0x00 0x01`, the FDB-tuple construction: byte order of the
//!   encoded entry equals lexicographic order of `(secondary, primary)`, and
//!   no encoded secondary is a prefix of another.
//! * The primary key rides verbatim at the tail, so one entry maps back to
//!   exactly one base record and entries for equal secondaries sort by
//!   primary key (deterministic scan order, stable resume keys).

/// First byte of every index entry key. `0xFE` sorts after every decimal
/// primary key and before the `0xFF` keyspace sentinel.
pub const INDEX_KEY_PREFIX: u8 = 0xFE;

/// Terminator closing the escaped secondary key. `0x00 0x01` sorts below
/// every escaped continuation (`0x00` escapes to `0x00 0xFF`, plain bytes
/// are `> 0x00`), which is what makes the encoding prefix-free and
/// order-preserving.
const TERMINATOR: [u8; 2] = [0x00, 0x01];

/// True if `key` lives in the index keyspace (and must therefore never be
/// treated as a base record — the write path uses this to keep index
/// maintenance from recursing onto its own entries).
pub fn is_index_key(key: &[u8]) -> bool {
    key.first() == Some(&INDEX_KEY_PREFIX)
}

/// The key prefix shared by every entry of index `id`.
pub fn index_prefix(id: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.push(INDEX_KEY_PREFIX);
    out.extend_from_slice(&id.to_be_bytes());
    out
}

/// The exclusive upper bound of index `id`'s entire keyspace: the smallest
/// key greater than every entry of the index.
pub fn index_upper_bound(id: u32) -> Vec<u8> {
    match id.checked_add(1) {
        Some(next) => index_prefix(next),
        // id == u32::MAX: 0xFF sorts above every 0xFE-prefixed entry.
        None => vec![0xFF],
    }
}

fn push_escaped(out: &mut Vec<u8>, secondary: &[u8]) {
    for &b in secondary {
        out.push(b);
        if b == 0x00 {
            out.push(0xFF);
        }
    }
}

/// Encode the entry key for `(secondary, primary)` under index `id`.
pub fn encode_index_key(id: u32, secondary: &[u8], primary: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + secondary.len() + 2 + primary.len() + 2);
    out.push(INDEX_KEY_PREFIX);
    out.extend_from_slice(&id.to_be_bytes());
    push_escaped(&mut out, secondary);
    out.extend_from_slice(&TERMINATOR);
    out.extend_from_slice(primary);
    out
}

/// Decode an entry key back into `(index_id, secondary, primary)`.
///
/// Returns `None` for anything that is not a well-formed index entry (wrong
/// prefix, truncated header, an un-escaped `0x00` that is neither an escape
/// pair nor the terminator).
pub fn decode_index_key(key: &[u8]) -> Option<(u32, Vec<u8>, Vec<u8>)> {
    let rest = key.strip_prefix(&[INDEX_KEY_PREFIX])?;
    if rest.len() < 4 {
        return None;
    }
    let id = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes"));
    let mut body = &rest[4..];
    let mut secondary = Vec::new();
    loop {
        match body {
            [0x00, 0x01, primary @ ..] => return Some((id, secondary, primary.to_vec())),
            [0x00, 0xFF, tail @ ..] => {
                secondary.push(0x00);
                body = tail;
            }
            [0x00, ..] | [] => return None,
            [b, tail @ ..] => {
                secondary.push(*b);
                body = tail;
            }
        }
    }
}

/// `[start, end)` bounds over index `id`'s entries for a *secondary-key*
/// range: `sec_start = None` starts at the first entry, `sec_end = None`
/// runs to the end of the index. The bounds are plain byte keys, so they
/// feed straight into the ordinary range-scan machinery.
pub fn secondary_range_bounds(
    id: u32,
    sec_start: Option<&[u8]>,
    sec_end: Option<&[u8]>,
) -> (Vec<u8>, Vec<u8>) {
    let start = match sec_start {
        Some(s) => {
            let mut out = index_prefix(id);
            push_escaped(&mut out, s);
            out
        }
        None => index_prefix(id),
    };
    let end = match sec_end {
        Some(e) => {
            let mut out = index_prefix(id);
            push_escaped(&mut out, e);
            out
        }
        None => index_upper_bound(id),
    };
    (start, end)
}

/// `[start, end)` bounds covering exactly the entries whose secondary key
/// equals `secondary` (an indexed point lookup). The upper bound replaces
/// the `0x00 0x01` terminator with `0x00 0x02`, which sorts above every
/// `terminator ‖ primary` tail and below every longer secondary.
pub fn secondary_exact_bounds(id: u32, secondary: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut start = index_prefix(id);
    push_escaped(&mut start, secondary);
    let mut end = start.clone();
    start.extend_from_slice(&TERMINATOR);
    end.extend_from_slice(&[0x00, 0x02]);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_and_rejects_garbage() {
        for (sec, pk) in [
            (&b""[..], &b""[..]),
            (b"a", b"00000000000000000042"),
            (b"\x00", b"p"),
            (b"\x00\x00\xff\x01", b"\x00"),
            (b"category-7", b"00000000000000000001"),
        ] {
            let key = encode_index_key(7, sec, pk);
            assert!(is_index_key(&key));
            assert_eq!(decode_index_key(&key), Some((7, sec.to_vec(), pk.to_vec())));
        }
        assert_eq!(decode_index_key(b"00000000000000000042"), None);
        assert_eq!(decode_index_key(&[0xFE, 0, 0]), None);
        // An unterminated secondary (trailing lone 0x00) is corrupt.
        assert_eq!(decode_index_key(&[0xFE, 0, 0, 0, 7, b'a', 0x00]), None);
        assert_eq!(decode_index_key(&[0xFE, 0, 0, 0, 7, b'a']), None);
    }

    #[test]
    fn entries_sort_after_every_decimal_primary_key() {
        let entry = encode_index_key(0, b"", b"");
        assert!(entry.as_slice() > &b"99999999999999999999"[..]);
        assert!(entry < index_upper_bound(u32::MAX));
    }

    #[test]
    fn exact_bounds_cover_exactly_one_secondary() {
        let (start, end) = secondary_exact_bounds(3, b"cat");
        for pk in [&b""[..], b"0", b"00000000000000000099", b"\xff\xff"] {
            let key = encode_index_key(3, b"cat", pk);
            assert!(start <= key && key < end, "pk {pk:?} outside exact bounds");
        }
        for other in [&b"ca"[..], b"cas", b"cat\x00", b"catz", b"cau", b"c"] {
            let key = encode_index_key(3, other, b"p");
            assert!(
                !(start <= key && key < end),
                "secondary {other:?} must be outside exact bounds"
            );
        }
    }

    proptest! {
        /// Byte order of encoded entries equals lexicographic order of
        /// (secondary, primary) — the property the whole subsystem rests on.
        #[test]
        fn prop_encoding_is_order_preserving(
            a_sec in proptest::collection::vec(any::<u8>(), 0..12),
            a_pk in proptest::collection::vec(any::<u8>(), 0..12),
            b_sec in proptest::collection::vec(any::<u8>(), 0..12),
            b_pk in proptest::collection::vec(any::<u8>(), 0..12),
        ) {
            let ka = encode_index_key(5, &a_sec, &a_pk);
            let kb = encode_index_key(5, &b_sec, &b_pk);
            prop_assert_eq!(
                ka.cmp(&kb),
                (a_sec.clone(), a_pk.clone()).cmp(&(b_sec.clone(), b_pk.clone()))
            );
        }

        #[test]
        fn prop_round_trip(
            id in any::<u32>(),
            sec in proptest::collection::vec(any::<u8>(), 0..24),
            pk in proptest::collection::vec(any::<u8>(), 0..24),
        ) {
            let key = encode_index_key(id, &sec, &pk);
            prop_assert_eq!(decode_index_key(&key), Some((id, sec.clone(), pk.clone())));
            let (lo, hi) = secondary_range_bounds(id, None, None);
            prop_assert!(lo <= key && key < hi);
            let (lo, hi) = secondary_exact_bounds(id, &sec);
            prop_assert!(lo <= key && key < hi);
        }

        /// Range bounds admit exactly the entries whose secondary falls in
        /// the requested secondary interval.
        #[test]
        fn prop_range_bounds_match_secondary_interval(
            sec in proptest::collection::vec(any::<u8>(), 0..8),
            pk in proptest::collection::vec(any::<u8>(), 0..8),
            lo in proptest::collection::vec(any::<u8>(), 0..8),
            hi in proptest::collection::vec(any::<u8>(), 0..8),
        ) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let key = encode_index_key(9, &sec, &pk);
            let (start, end) = secondary_range_bounds(9, Some(&lo), Some(&hi));
            let in_bounds = start <= key && key < end;
            let expected = lo <= sec && sec < hi;
            prop_assert_eq!(in_bounds, expected,
                "sec {:?} in [{:?}, {:?}) disagreed with byte bounds", sec, lo, hi);
        }
    }
}
