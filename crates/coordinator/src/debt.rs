//! Replication-debt accounting and repair placement.
//!
//! A StoC failure or drain leaves SSTable fragment replicas, metadata-block
//! replicas and in-memory log replicas below their configured targets
//! (Section 4.4.1's availability policies define the targets). This module is
//! the pure arithmetic of that gap: given one table's metadata and a view of
//! the StoC fleet, [`table_debt`] reports which pieces are missing copies and
//! whether a readable source survives; [`choose_repair_targets`] picks where
//! the replacement copies go. The supervisor in `nova-lsm` walks every
//! range's version with these and performs the copies under its I/O budget.

use nova_common::StocId;
use nova_sstable::SstableMeta;
use std::collections::HashSet;

/// The supervisor's view of the StoC fleet at scan time.
///
/// The two sets encode the draining-vs-dead distinction:
///
/// * a **draining** StoC (removed from placement, node alive) is `readable`
///   but not `healthy` — its replicas still serve reads and can source
///   repair copies, but they no longer count toward the availability target,
///   so draining creates debt that re-replication migrates onto placeable
///   StoCs;
/// * a **dead** StoC (node failed) is neither — its replicas are lost until
///   the node recovers, and repairs must read from a surviving replica or
///   reconstruct from parity.
#[derive(Debug, Clone, Default)]
pub struct StocView {
    /// StoCs whose blocks are currently readable: registered with a live
    /// node, whether or not they accept new placements.
    pub readable: HashSet<StocId>,
    /// StoCs counting toward replication targets and eligible as repair
    /// destinations: readable *and* placeable.
    pub healthy: HashSet<StocId>,
}

impl StocView {
    /// Replicas of the given handles that live on healthy StoCs.
    fn healthy_copies(&self, stocs: impl Iterator<Item = StocId>) -> usize {
        stocs.filter(|s| self.healthy.contains(s)).count()
    }
}

/// One under-replicated data fragment of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentDebt {
    /// Index of the fragment within the table.
    pub index: usize,
    /// Copies missing to reach the availability target.
    pub missing: u32,
    /// Size of one copy in bytes.
    pub bytes: u64,
    /// Whether any replica is still readable (parity reconstruction aside).
    pub has_readable_source: bool,
}

/// The replication debt of a single table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableDebt {
    /// Under-replicated data fragments.
    pub fragments: Vec<FragmentDebt>,
    /// Metadata-block copies missing to reach the metadata target.
    pub meta_missing: u32,
    /// Whether any metadata replica is still readable.
    pub meta_has_readable_source: bool,
    /// Size of one metadata-block copy in bytes.
    pub meta_bytes: u64,
}

impl TableDebt {
    /// True when the table is fully replicated on healthy StoCs.
    pub fn is_zero(&self) -> bool {
        self.fragments.is_empty() && self.meta_missing == 0
    }

    /// Total missing replica count (fragments + metadata blocks).
    pub fn missing_replicas(&self) -> u64 {
        self.fragments.iter().map(|f| f.missing as u64).sum::<u64>() + self.meta_missing as u64
    }

    /// Total bytes of missing copies.
    pub fn missing_bytes(&self) -> u64 {
        self.fragments
            .iter()
            .map(|f| f.missing as u64 * f.bytes)
            .sum::<u64>()
            + self.meta_missing as u64 * self.meta_bytes
    }
}

/// Cluster-wide replication-debt counters, aggregated across every table of
/// every range (plus the short-lived in-memory log replicas). Surfaced in
/// `ClusterHealth` and as `selfheal.debt.*` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DebtSummary {
    /// Tables with any missing replica.
    pub under_replicated_tables: u64,
    /// Missing data-fragment replicas.
    pub missing_fragment_replicas: u64,
    /// Missing metadata-block replicas.
    pub missing_meta_replicas: u64,
    /// In-memory log replicas living on unhealthy StoCs (these heal through
    /// memtable rotation, not copying — log files die at flush).
    pub missing_log_replicas: u64,
    /// Total bytes of missing fragment + metadata copies.
    pub missing_bytes: u64,
    /// Pieces whose every replica is unreadable (no repair source; waiting
    /// on node recovery or parity reconstruction).
    pub unreadable_pieces: u64,
    /// Ranges whose durable MANIFEST is behind their in-memory version
    /// because a persist failed (pinned home down). These heal by re-saving
    /// the MANIFEST, not by copying blocks.
    pub dirty_manifests: u64,
}

impl DebtSummary {
    /// True when nothing is under-replicated.
    pub fn is_zero(&self) -> bool {
        *self == DebtSummary::default()
    }

    /// Fold one table's debt into the summary.
    pub fn absorb(&mut self, debt: &TableDebt) {
        if debt.is_zero() {
            return;
        }
        self.under_replicated_tables += 1;
        for f in &debt.fragments {
            self.missing_fragment_replicas += f.missing as u64;
            if !f.has_readable_source {
                self.unreadable_pieces += 1;
            }
        }
        self.missing_meta_replicas += debt.meta_missing as u64;
        if debt.meta_missing > 0 && !debt.meta_has_readable_source {
            self.unreadable_pieces += 1;
        }
        self.missing_bytes += debt.missing_bytes();
    }
}

/// Compute one table's replication debt against the availability targets:
/// `data_target` copies of every data fragment and `meta_target` copies of
/// the metadata block, all on healthy StoCs. Replicas on draining or dead
/// StoCs do not count toward the targets (see [`StocView`]); the target is
/// also capped at the healthy fleet size, since distinct-StoC placement can
/// never exceed it.
pub fn table_debt(meta: &SstableMeta, view: &StocView, data_target: u32, meta_target: u32) -> TableDebt {
    let cap = view.healthy.len() as u32;
    let data_target = data_target.min(cap);
    let meta_target = meta_target.min(cap);
    let mut debt = TableDebt {
        meta_bytes: meta.meta_blocks.first().map(|h| h.size as u64).unwrap_or(0),
        ..TableDebt::default()
    };
    for (index, fragment) in meta.fragments.iter().enumerate() {
        let healthy = view.healthy_copies(fragment.replicas.iter().map(|h| h.stoc)) as u32;
        if healthy < data_target {
            debt.fragments.push(FragmentDebt {
                index,
                missing: data_target - healthy,
                bytes: fragment.size,
                has_readable_source: fragment.replicas.iter().any(|h| view.readable.contains(&h.stoc)),
            });
        }
    }
    let meta_healthy = view.healthy_copies(meta.meta_blocks.iter().map(|h| h.stoc)) as u32;
    if meta_healthy < meta_target {
        debt.meta_missing = meta_target - meta_healthy;
        debt.meta_has_readable_source = meta.meta_blocks.iter().any(|h| view.readable.contains(&h.stoc));
    }
    debt
}

/// Choose up to `n` repair destinations from the healthy StoCs, excluding
/// those already holding a copy of the piece. Deterministic given `seed`
/// (callers pass something that varies per piece, e.g. the file number), and
/// rotated by it so repair load spreads across the fleet instead of piling
/// onto the lowest id.
pub fn choose_repair_targets(view: &StocView, holding: &[StocId], n: usize, seed: u64) -> Vec<StocId> {
    let mut candidates: Vec<StocId> = view
        .healthy
        .iter()
        .copied()
        .filter(|s| !holding.contains(s))
        .collect();
    candidates.sort();
    if candidates.is_empty() {
        return Vec::new();
    }
    let start = (seed % candidates.len() as u64) as usize;
    candidates.rotate_left(start);
    candidates.truncate(n);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::{StocBlockHandle, StocFileId};
    use nova_sstable::FragmentLocation;

    fn handle(stoc: u32) -> StocBlockHandle {
        StocBlockHandle {
            stoc: StocId(stoc),
            file: StocFileId::new(StocId(stoc), 1),
            offset: 0,
            size: 4096,
        }
    }

    fn table(fragment_stocs: &[&[u32]], meta_stocs: &[u32]) -> SstableMeta {
        SstableMeta {
            file_number: 7,
            fragments: fragment_stocs
                .iter()
                .map(|stocs| FragmentLocation {
                    size: 1024,
                    replicas: stocs.iter().map(|&s| handle(s)).collect(),
                })
                .collect(),
            meta_blocks: meta_stocs.iter().map(|&s| handle(s)).collect(),
            ..SstableMeta::default()
        }
    }

    fn view(readable: &[u32], healthy: &[u32]) -> StocView {
        StocView {
            readable: readable.iter().map(|&s| StocId(s)).collect(),
            healthy: healthy.iter().map(|&s| StocId(s)).collect(),
        }
    }

    #[test]
    fn fully_replicated_table_has_no_debt() {
        let meta = table(&[&[0, 1], &[1, 2]], &[0, 2]);
        let v = view(&[0, 1, 2], &[0, 1, 2]);
        assert!(table_debt(&meta, &v, 2, 2).is_zero());
    }

    #[test]
    fn dead_stoc_creates_debt_without_a_source_when_it_held_the_only_copy() {
        let meta = table(&[&[0], &[1]], &[0]);
        // StoC 1 is dead: fragment 1 lost its only copy.
        let v = view(&[0, 2], &[0, 2]);
        let debt = table_debt(&meta, &v, 2, 1);
        let lost = debt.fragments.iter().find(|f| f.index == 1).unwrap();
        assert!(!lost.has_readable_source);
        // Fragment 0 is merely under-replicated, with a live source.
        let under = debt.fragments.iter().find(|f| f.index == 0).unwrap();
        assert_eq!(under.missing, 1);
        assert!(under.has_readable_source);
    }

    #[test]
    fn draining_stoc_creates_debt_but_remains_a_readable_source() {
        let meta = table(&[&[0, 1]], &[0]);
        // StoC 1 is draining: readable, not healthy.
        let v = view(&[0, 1, 2], &[0, 2]);
        let debt = table_debt(&meta, &v, 2, 1);
        assert_eq!(debt.fragments.len(), 1);
        assert_eq!(debt.fragments[0].missing, 1);
        assert!(debt.fragments[0].has_readable_source);
        assert_eq!(debt.meta_missing, 0);
        // Dead instead of draining: same missing count, but the distinction
        // shows in sourcing — here only StoC 0's copy remains readable,
        // which it still is, so flip the scenario: both copies on dead/
        // draining StoCs.
        let meta2 = table(&[&[1]], &[1]);
        let draining = table_debt(&meta2, &view(&[0, 1, 2], &[0, 2]), 1, 1);
        assert!(
            draining.fragments[0].has_readable_source,
            "draining copy sources repairs"
        );
        let dead = table_debt(&meta2, &view(&[0, 2], &[0, 2]), 1, 1);
        assert!(
            !dead.fragments[0].has_readable_source,
            "dead copy cannot source repairs"
        );
    }

    #[test]
    fn targets_are_capped_at_the_healthy_fleet_size() {
        let meta = table(&[&[0]], &[0]);
        let v = view(&[0], &[0]);
        // Target 3 with one healthy StoC: nothing further is achievable.
        assert!(table_debt(&meta, &v, 3, 3).is_zero());
    }

    #[test]
    fn summary_absorbs_and_counts_unreadable_pieces() {
        let mut summary = DebtSummary::default();
        let v = view(&[0], &[0, 3]);
        summary.absorb(&table_debt(&table(&[&[1]], &[0]), &v, 1, 1));
        assert_eq!(summary.under_replicated_tables, 1);
        assert_eq!(summary.missing_fragment_replicas, 1);
        assert_eq!(summary.unreadable_pieces, 1);
        assert!(!summary.is_zero());
        summary.absorb(&TableDebt::default());
        assert_eq!(summary.under_replicated_tables, 1, "zero debt absorbs as a no-op");
    }

    #[test]
    fn repair_targets_exclude_holders_and_rotate_by_seed() {
        let v = view(&[0, 1, 2, 3], &[0, 1, 2, 3]);
        let holding = [StocId(1)];
        for seed in 0..8 {
            let targets = choose_repair_targets(&v, &holding, 2, seed);
            assert_eq!(targets.len(), 2);
            assert!(!targets.contains(&StocId(1)));
        }
        let a = choose_repair_targets(&v, &holding, 1, 0);
        let b = choose_repair_targets(&v, &holding, 1, 1);
        assert_ne!(a, b, "different seeds spread repair load");
        assert!(choose_repair_targets(&v, &[StocId(0), StocId(1), StocId(2), StocId(3)], 1, 0).is_empty());
    }
}
