//! The coordinator: cluster configuration, range → LTC assignment, failure
//! handling and the load-balancing / elasticity decisions of Sections 8.2.6
//! and 9.
//!
//! The coordinator is off the data path: clients cache its configuration and
//! talk to LTCs directly; LTCs and StoCs renew leases on heartbeats. The
//! paper defers coordinator high availability to Zookeeper; this
//! implementation is a single in-process instance whose decisions are applied
//! by the cluster layer (`nova-lsm`).

use crate::lease::{LeaseHolder, LeaseTable};
use nova_common::clock::ClockRef;
use nova_common::{LtcId, NodeId, RangeId, Result, StocId};
use nova_index::{IndexCatalog, IndexState, ValueProjection};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// The cluster configuration handed to clients: which LTC serves each range,
/// which StoCs exist, and a monotonically increasing epoch so stale clients
/// can detect that they must refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    /// Monotonically increasing configuration number.
    pub epoch: u64,
    /// Assignment of every range to an LTC.
    pub range_assignment: HashMap<RangeId, LtcId>,
    /// LTCs currently in the configuration, with their nodes.
    pub ltcs: HashMap<LtcId, NodeId>,
    /// StoCs currently in the configuration, with their nodes.
    pub stocs: HashMap<StocId, NodeId>,
    /// The StoC that holds each range's MANIFEST, pinned once when the range
    /// is created. Recovery, migration and manifest persistence all resolve
    /// the MANIFEST through this map, so later `add_stoc`/`remove_stoc`
    /// calls can never silently move where a range's metadata lives.
    pub manifest_homes: HashMap<RangeId, StocId>,
    /// The secondary-index catalog snapshot installed with this epoch.
    /// Living inside the configuration means catalog and routing epoch are
    /// always read under the same lock — the invariant the create-index
    /// catch-up fence relies on (a writer that passes the epoch check is
    /// guaranteed to have planned maintenance against a catalog at least as
    /// new as the fence's).
    pub indexes: Arc<IndexCatalog>,
}

impl Configuration {
    /// The LTC serving `range`, if assigned.
    pub fn ltc_of(&self, range: RangeId) -> Option<LtcId> {
        self.range_assignment.get(&range).copied()
    }

    /// The StoC pinned as `range`'s MANIFEST home, if the range exists.
    pub fn manifest_home(&self, range: RangeId) -> Option<StocId> {
        self.manifest_homes.get(&range).copied()
    }

    /// Ranges served by `ltc`, in id order.
    pub fn ranges_of(&self, ltc: LtcId) -> Vec<RangeId> {
        let mut out: Vec<RangeId> = self
            .range_assignment
            .iter()
            .filter(|(_, l)| **l == ltc)
            .map(|(r, _)| *r)
            .collect();
        out.sort();
        out
    }
}

/// A proposed range migration (source LTC → destination LTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The range to move.
    pub range: RangeId,
    /// Where it currently lives.
    pub from: LtcId,
    /// Where it should go.
    pub to: LtcId,
}

/// The coordinator.
pub struct Coordinator {
    config: RwLock<Configuration>,
    leases: LeaseTable,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.config.read();
        f.debug_struct("Coordinator")
            .field("epoch", &c.epoch)
            .field("ltcs", &c.ltcs.len())
            .field("stocs", &c.stocs.len())
            .field("ranges", &c.range_assignment.len())
            .finish()
    }
}

impl Coordinator {
    /// Create a coordinator with an empty configuration.
    pub fn new(clock: ClockRef, lease_duration: Duration) -> Self {
        Coordinator {
            config: RwLock::new(Configuration {
                epoch: 0,
                range_assignment: HashMap::new(),
                ltcs: HashMap::new(),
                stocs: HashMap::new(),
                manifest_homes: HashMap::new(),
                indexes: Arc::new(IndexCatalog::empty()),
            }),
            leases: LeaseTable::new(clock, lease_duration),
        }
    }

    /// The current configuration (clients cache this).
    pub fn configuration(&self) -> Configuration {
        self.config.read().clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.config.read().epoch
    }

    /// Resolve the LTC serving `range` together with the epoch of that
    /// decision, without cloning the configuration. This is the data-path
    /// routing primitive: every client operation calls it, so it must stay
    /// allocation-free.
    pub fn route_of(&self, range: RangeId) -> (Option<LtcId>, u64) {
        let c = self.config.read();
        (c.ltc_of(range), c.epoch)
    }

    /// [`Coordinator::route_of`] plus the index-catalog snapshot, read under
    /// the same lock acquisition. Writers that must plan index maintenance
    /// consistently with the routing epoch (the catch-up-fence contract) go
    /// through this; the catalog rides behind an `Arc` so the read stays
    /// allocation-free.
    pub fn route_of_with_catalog(&self, range: RangeId) -> (Option<LtcId>, u64, Arc<IndexCatalog>) {
        let c = self.config.read();
        (c.ltc_of(range), c.epoch, Arc::clone(&c.indexes))
    }

    /// The current index-catalog snapshot.
    pub fn index_catalog(&self) -> Arc<IndexCatalog> {
        Arc::clone(&self.config.read().indexes)
    }

    /// Register a secondary index: install a new catalog snapshot with the
    /// index in `Backfilling` state and bump the epoch. Returns the new
    /// index's id and the epoch of the change — the fence epoch the cluster
    /// layer pushes to every range engine before backfilling.
    pub fn register_index(&self, name: &str, projection: ValueProjection) -> Result<(u32, u64)> {
        let mut c = self.config.write();
        let next_epoch = c.epoch + 1;
        let (catalog, id) = c.indexes.with_index(name, projection, next_epoch)?;
        c.indexes = Arc::new(catalog);
        c.epoch = next_epoch;
        Ok((id, next_epoch))
    }

    /// Move index `id` to `state` (Backfilling → Active when the backfill
    /// finishes), bumping the epoch. Returns the epoch of the change.
    pub fn set_index_state(&self, id: u32, state: IndexState) -> Result<u64> {
        let mut c = self.config.write();
        let next_epoch = c.epoch + 1;
        c.indexes = Arc::new(c.indexes.with_state(id, state, next_epoch)?);
        c.epoch = next_epoch;
        Ok(next_epoch)
    }

    /// Drop index `id` from the catalog, bumping the epoch. Returns the
    /// epoch of the change; the cluster layer fences on it before deleting
    /// the index's entries so no fresh maintenance write can trail the
    /// cleanup.
    pub fn drop_index(&self, id: u32) -> Result<u64> {
        let mut c = self.config.write();
        let next_epoch = c.epoch + 1;
        c.indexes = Arc::new(c.indexes.without(id, next_epoch)?);
        c.epoch = next_epoch;
        Ok(next_epoch)
    }

    /// Register an LTC (also grants its initial lease).
    pub fn register_ltc(&self, ltc: LtcId, node: NodeId) {
        let mut c = self.config.write();
        c.ltcs.insert(ltc, node);
        c.epoch += 1;
        drop(c);
        self.leases.grant(LeaseHolder::Ltc(ltc.0));
    }

    /// Register a StoC (also grants its initial lease).
    pub fn register_stoc(&self, stoc: StocId, node: NodeId) {
        let mut c = self.config.write();
        c.stocs.insert(stoc, node);
        c.epoch += 1;
        drop(c);
        self.leases.grant(LeaseHolder::Stoc(stoc.0));
    }

    /// Remove a StoC from the configuration (graceful scale-in, Section 9).
    pub fn deregister_stoc(&self, stoc: StocId) {
        let mut c = self.config.write();
        if c.stocs.remove(&stoc).is_some() {
            c.epoch += 1;
        }
        drop(c);
        self.leases.revoke(LeaseHolder::Stoc(stoc.0));
    }

    /// Remove an LTC from the configuration; its ranges become unassigned and
    /// the caller is expected to reassign them (via [`Coordinator::assign_range`]
    /// or [`Coordinator::plan_failover`]).
    pub fn deregister_ltc(&self, ltc: LtcId) -> Vec<RangeId> {
        let mut c = self.config.write();
        let orphaned: Vec<RangeId> = c
            .range_assignment
            .iter()
            .filter(|(_, l)| **l == ltc)
            .map(|(r, _)| *r)
            .collect();
        if c.ltcs.remove(&ltc).is_some() {
            c.epoch += 1;
        }
        drop(c);
        self.leases.revoke(LeaseHolder::Ltc(ltc.0));
        orphaned
    }

    /// Record a heartbeat from a component, renewing its lease.
    pub fn heartbeat(&self, holder: LeaseHolder) {
        self.leases.grant(holder);
    }

    /// True if the holder's lease is still valid.
    pub fn lease_valid(&self, holder: LeaseHolder) -> bool {
        self.leases.is_valid(holder)
    }

    /// Components whose leases have expired.
    pub fn expired_components(&self) -> Vec<LeaseHolder> {
        self.leases.expired()
    }

    /// Assign (or reassign) a range to an LTC, bumping the epoch. Returns
    /// the new epoch: the first epoch at which clients observe the
    /// assignment.
    pub fn assign_range(&self, range: RangeId, ltc: LtcId) -> Result<u64> {
        let mut c = self.config.write();
        if !c.ltcs.contains_key(&ltc) {
            return Err(nova_common::Error::UnknownLtc(ltc));
        }
        c.range_assignment.insert(range, ltc);
        c.epoch += 1;
        Ok(c.epoch)
    }

    /// Pin `range`'s MANIFEST to a StoC. The first pin wins: repeated calls
    /// (range re-creation after failover, migration) return the original
    /// home so every component keeps resolving the same MANIFEST location.
    pub fn pin_manifest_home(&self, range: RangeId, stoc: StocId) -> StocId {
        let mut c = self.config.write();
        *c.manifest_homes.entry(range).or_insert(stoc)
    }

    /// The pinned MANIFEST home of `range`, if any.
    pub fn manifest_home(&self, range: RangeId) -> Option<StocId> {
        self.config.read().manifest_home(range)
    }

    /// Partition `num_ranges` ranges across the registered LTCs round-robin
    /// (the paper's "assign ω ranges to each LTC").
    pub fn assign_ranges_round_robin(&self, num_ranges: usize) -> Result<()> {
        let ltcs: Vec<LtcId> = {
            let c = self.config.read();
            let mut ids: Vec<LtcId> = c.ltcs.keys().copied().collect();
            ids.sort();
            ids
        };
        if ltcs.is_empty() {
            return Err(nova_common::Error::Unavailable("no LTCs registered".into()));
        }
        let per_ltc = num_ranges.div_ceil(ltcs.len());
        let mut c = self.config.write();
        for r in 0..num_ranges {
            let ltc = ltcs[(r / per_ltc).min(ltcs.len() - 1)];
            c.range_assignment.insert(RangeId(r as u32), ltc);
        }
        c.epoch += 1;
        Ok(())
    }

    /// Plan the failover of a failed LTC: scatter its ranges across the
    /// surviving LTCs ("With η LTCs, it may scatter its ranges across η−1
    /// LTCs. This enables recovery of the different ranges in parallel",
    /// Section 4.5).
    pub fn plan_failover(&self, failed: LtcId) -> Vec<MigrationPlan> {
        let c = self.config.read();
        let mut survivors: Vec<LtcId> = c.ltcs.keys().copied().filter(|l| *l != failed).collect();
        survivors.sort();
        if survivors.is_empty() {
            return Vec::new();
        }
        let mut plans = Vec::new();
        for (i, range) in c.ranges_of(failed).into_iter().enumerate() {
            plans.push(MigrationPlan {
                range,
                from: failed,
                to: survivors[i % survivors.len()],
            });
        }
        plans
    }

    /// Plan load-balancing migrations given each LTC's observed load
    /// (operations per second or CPU utilization — any consistent metric).
    /// Ranges are moved from the most-loaded LTC to the least-loaded LTCs
    /// until the donor's projected load is within `tolerance` of the mean,
    /// approximating the migration experiment of Section 8.2.6.
    pub fn plan_load_balancing(
        &self,
        load_per_ltc: &HashMap<LtcId, f64>,
        load_per_range: &HashMap<RangeId, f64>,
        tolerance: f64,
    ) -> Vec<MigrationPlan> {
        let c = self.config.read();
        if c.ltcs.len() < 2 || load_per_ltc.is_empty() {
            return Vec::new();
        }
        let total: f64 = load_per_ltc.values().sum();
        let mean = total / c.ltcs.len() as f64;
        let (&donor, &donor_load) = match load_per_ltc.iter().max_by(|a, b| a.1.total_cmp(b.1)) {
            Some(x) => x,
            None => return Vec::new(),
        };
        if donor_load <= mean * (1.0 + tolerance) {
            return Vec::new();
        }
        // Receivers ordered by increasing load.
        let mut receivers: Vec<(LtcId, f64)> = c
            .ltcs
            .keys()
            .filter(|l| **l != donor)
            .map(|l| (*l, load_per_ltc.get(l).copied().unwrap_or(0.0)))
            .collect();
        receivers.sort_by(|a, b| a.1.total_cmp(&b.1));

        // Donor ranges ordered by decreasing load; keep the hottest range on
        // the donor (moving it just moves the bottleneck) and shed the rest.
        let mut donor_ranges: Vec<(RangeId, f64)> = c
            .ranges_of(donor)
            .into_iter()
            .map(|r| (r, load_per_range.get(&r).copied().unwrap_or(0.0)))
            .collect();
        donor_ranges.sort_by(|a, b| b.1.total_cmp(&a.1));

        let mut plans = Vec::new();
        let mut projected_donor = donor_load;
        let mut receiver_loads: HashMap<LtcId, f64> = receivers.iter().cloned().collect();
        for (range, range_load) in donor_ranges.into_iter().skip(1) {
            if projected_donor <= mean * (1.0 + tolerance) {
                break;
            }
            // Send to the currently least-loaded receiver.
            let (&to, _) = match receiver_loads.iter().min_by(|a, b| a.1.total_cmp(b.1)) {
                Some(x) => x,
                None => break,
            };
            plans.push(MigrationPlan {
                range,
                from: donor,
                to,
            });
            projected_donor -= range_load;
            *receiver_loads.entry(to).or_insert(0.0) += range_load;
        }
        plans
    }

    /// Atomically commit a migration: verify the range is still owned by the
    /// plan's source, flip ownership to the destination and bump the epoch.
    /// Returns the commit epoch — the first epoch at which clients observe
    /// the new owner. Fails with [`nova_common::Error::StaleConfig`] if the
    /// range moved since the plan was made (a concurrent migration won).
    pub fn commit_migration(&self, plan: &MigrationPlan) -> Result<u64> {
        let mut c = self.config.write();
        if !c.ltcs.contains_key(&plan.to) {
            return Err(nova_common::Error::UnknownLtc(plan.to));
        }
        if c.ltc_of(plan.range) != Some(plan.from) {
            return Err(nova_common::Error::StaleConfig { epoch: c.epoch });
        }
        c.range_assignment.insert(plan.range, plan.to);
        c.epoch += 1;
        Ok(c.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::clock::manual_clock;

    fn coordinator() -> Coordinator {
        let (clock, _) = manual_clock();
        Coordinator::new(clock, Duration::from_secs(1))
    }

    #[test]
    fn registration_bumps_epoch_and_grants_leases() {
        let c = coordinator();
        assert_eq!(c.epoch(), 0);
        c.register_ltc(LtcId(0), NodeId(0));
        c.register_stoc(StocId(0), NodeId(1));
        assert_eq!(c.epoch(), 2);
        assert!(c.lease_valid(LeaseHolder::Ltc(0)));
        assert!(c.lease_valid(LeaseHolder::Stoc(0)));
        let config = c.configuration();
        assert_eq!(config.ltcs.len(), 1);
        assert_eq!(config.stocs.len(), 1);
    }

    #[test]
    fn round_robin_assignment_covers_every_range() {
        let c = coordinator();
        for i in 0..4u32 {
            c.register_ltc(LtcId(i), NodeId(i));
        }
        c.assign_ranges_round_robin(64).unwrap();
        let config = c.configuration();
        assert_eq!(config.range_assignment.len(), 64);
        for i in 0..4u32 {
            assert_eq!(config.ranges_of(LtcId(i)).len(), 16);
        }
        assert_eq!(config.ltc_of(RangeId(0)), Some(LtcId(0)));
        assert_eq!(config.ltc_of(RangeId(63)), Some(LtcId(3)));
    }

    #[test]
    fn assignment_to_unknown_ltc_fails() {
        let c = coordinator();
        assert!(c.assign_range(RangeId(0), LtcId(7)).is_err());
        assert!(c.assign_ranges_round_robin(4).is_err());
    }

    #[test]
    fn failover_scatters_ranges_across_survivors() {
        let c = coordinator();
        for i in 0..3u32 {
            c.register_ltc(LtcId(i), NodeId(i));
        }
        c.assign_ranges_round_robin(9).unwrap();
        let plans = c.plan_failover(LtcId(0));
        assert_eq!(plans.len(), 3);
        // Ranges are scattered across both survivors, not piled on one.
        let to_1 = plans.iter().filter(|p| p.to == LtcId(1)).count();
        let to_2 = plans.iter().filter(|p| p.to == LtcId(2)).count();
        assert!(to_1 >= 1 && to_2 >= 1);
        for p in &plans {
            c.commit_migration(p).unwrap();
        }
        assert!(c.configuration().ranges_of(LtcId(0)).is_empty());
        // Deregistering now orphans nothing.
        assert!(c.deregister_ltc(LtcId(0)).is_empty());
    }

    #[test]
    fn load_balancing_sheds_ranges_from_the_hot_ltc() {
        let c = coordinator();
        for i in 0..5u32 {
            c.register_ltc(LtcId(i), NodeId(i));
        }
        c.assign_ranges_round_robin(10).unwrap();
        // LTC 0 carries 85% of the load (the paper's Zipfian scenario).
        let mut ltc_load = HashMap::new();
        ltc_load.insert(LtcId(0), 850.0);
        for i in 1..5u32 {
            ltc_load.insert(LtcId(i), 37.5);
        }
        let mut range_load = HashMap::new();
        for r in c.configuration().ranges_of(LtcId(0)) {
            range_load.insert(r, 425.0);
        }
        let plans = c.plan_load_balancing(&ltc_load, &range_load, 0.2);
        assert!(!plans.is_empty(), "a heavily loaded LTC must shed ranges");
        assert!(plans.iter().all(|p| p.from == LtcId(0)));
        // The hottest range stays on the donor; others move to cold LTCs.
        assert!(plans.iter().all(|p| p.to != LtcId(0)));

        // A balanced cluster produces no plans.
        let balanced: HashMap<LtcId, f64> = (0..5u32).map(|i| (LtcId(i), 100.0)).collect();
        assert!(c.plan_load_balancing(&balanced, &range_load, 0.2).is_empty());
    }

    #[test]
    fn manifest_home_pins_are_first_write_wins() {
        let c = coordinator();
        assert_eq!(c.manifest_home(RangeId(3)), None);
        assert_eq!(c.pin_manifest_home(RangeId(3), StocId(1)), StocId(1));
        // A re-pin (range re-creation after failover or migration) must not
        // move the MANIFEST home.
        assert_eq!(c.pin_manifest_home(RangeId(3), StocId(9)), StocId(1));
        assert_eq!(c.manifest_home(RangeId(3)), Some(StocId(1)));
        assert_eq!(c.configuration().manifest_home(RangeId(3)), Some(StocId(1)));
    }

    #[test]
    fn commit_migration_is_a_guarded_atomic_flip() {
        let c = coordinator();
        for i in 0..3u32 {
            c.register_ltc(LtcId(i), NodeId(i));
        }
        c.assign_ranges_round_robin(3).unwrap();
        let plan = MigrationPlan {
            range: RangeId(0),
            from: LtcId(0),
            to: LtcId(1),
        };
        let epoch = c.commit_migration(&plan).unwrap();
        assert_eq!(epoch, c.epoch(), "commit returns the flip's epoch");
        assert_eq!(c.configuration().ltc_of(RangeId(0)), Some(LtcId(1)));
        // Replaying the plan fails: the source no longer owns the range, so
        // a concurrent migration cannot double-commit.
        assert!(matches!(
            c.commit_migration(&plan),
            Err(nova_common::Error::StaleConfig { .. })
        ));
        // A plan onto an unknown destination fails without touching state.
        let bad = MigrationPlan {
            range: RangeId(1),
            from: LtcId(1),
            to: LtcId(9),
        };
        assert!(c.commit_migration(&bad).is_err());
        assert_eq!(c.epoch(), epoch);
    }

    #[test]
    fn expired_leases_are_reported() {
        let (clock, handle) = manual_clock();
        let c = Coordinator::new(clock, Duration::from_millis(10));
        c.register_ltc(LtcId(0), NodeId(0));
        handle.advance(Duration::from_millis(50));
        assert_eq!(c.expired_components(), vec![LeaseHolder::Ltc(0)]);
        c.heartbeat(LeaseHolder::Ltc(0));
        assert!(c.expired_components().is_empty());
    }

    #[test]
    fn index_catalog_rides_the_configuration_epoch() {
        let c = coordinator();
        c.register_ltc(LtcId(0), NodeId(0));
        let epoch0 = c.epoch();
        assert!(c.index_catalog().is_empty());

        let (id, fence) = c
            .register_index("by_cat", ValueProjection::Slice { offset: 0, len: 4 })
            .unwrap();
        assert_eq!(fence, epoch0 + 1);
        assert_eq!(c.epoch(), fence);
        // Routing and catalog come from one lock acquisition and agree.
        let (_, epoch, catalog) = c.route_of_with_catalog(RangeId(0));
        assert_eq!(epoch, fence);
        assert_eq!(catalog.version, fence);
        assert_eq!(catalog.find("by_cat").unwrap().id, id);
        assert_eq!(catalog.find("by_cat").unwrap().state, IndexState::Backfilling);

        let activated = c.set_index_state(id, IndexState::Active).unwrap();
        assert_eq!(activated, fence + 1);
        assert_eq!(c.index_catalog().get(id).unwrap().state, IndexState::Active);

        // Duplicate registration fails without moving the epoch.
        assert!(c.register_index("by_cat", ValueProjection::Whole).is_err());
        assert_eq!(c.epoch(), activated);

        let dropped = c.drop_index(id).unwrap();
        assert_eq!(dropped, activated + 1);
        assert!(c.index_catalog().is_empty());
        assert!(c.drop_index(id).is_err());
        assert!(c.set_index_state(id, IndexState::Active).is_err());
    }

    #[test]
    fn stoc_lifecycle() {
        let c = coordinator();
        c.register_stoc(StocId(5), NodeId(9));
        assert_eq!(c.configuration().stocs.len(), 1);
        let epoch = c.epoch();
        c.deregister_stoc(StocId(5));
        assert!(c.configuration().stocs.is_empty());
        assert!(c.epoch() > epoch);
        assert!(!c.lease_valid(LeaseHolder::Stoc(5)));
    }
}
