//! # nova-coordinator
//!
//! The coordinator of a Nova-LSM deployment (Section 3, Figure 3): cluster
//! membership, lease management, the assignment of application ranges to
//! LTCs, failover planning when an LTC's lease expires, and the
//! load-balancing / elasticity decisions evaluated in Sections 8.2.6 and 9.
//!
//! The coordinator is deliberately off the data path: clients cache its
//! configuration and communicate with LTCs directly, and components renew
//! leases via heartbeats. High availability of the coordinator itself is
//! delegated to an external service (the paper suggests Zookeeper) and is out
//! of scope here.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coordinator;
pub mod debt;
pub mod lease;

pub use coordinator::{Configuration, Coordinator, MigrationPlan};
pub use debt::{choose_repair_targets, table_debt, DebtSummary, FragmentDebt, StocView, TableDebt};
pub use lease::{Lease, LeaseHolder, LeaseTable};
