//! Leases (Section 3 of the paper).
//!
//! "We use leases to minimize management overhead at the coordinator. … The
//! coordinator grants a lease on a range to an LTC to process requests
//! referencing key-value pairs contained in that range. Similarly, the
//! coordinator grants a lease to a StoC to process requests. Both StoC and
//! LTC may request and receive lease extensions from the coordinator
//! indefinitely. … A StoC/LTC that fails to renew its lease by communicating
//! with the coordinator stops processing requests."

use nova_common::clock::ClockRef;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// The identity of a lease holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LeaseHolder {
    /// An LTC identified by its id.
    Ltc(u32),
    /// A StoC identified by its id.
    Stoc(u32),
}

/// A granted lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Who holds the lease.
    pub holder: LeaseHolder,
    /// Expiry, in nanoseconds of the coordinator's clock.
    pub expires_at_nanos: u64,
}

/// The coordinator's lease table.
pub struct LeaseTable {
    clock: ClockRef,
    duration: Duration,
    leases: Mutex<HashMap<LeaseHolder, Lease>>,
}

impl std::fmt::Debug for LeaseTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseTable")
            .field("leases", &self.leases.lock().len())
            .finish()
    }
}

impl LeaseTable {
    /// Create a lease table granting leases of `duration`.
    pub fn new(clock: ClockRef, duration: Duration) -> Self {
        LeaseTable {
            clock,
            duration,
            leases: Mutex::new(HashMap::new()),
        }
    }

    /// Grant (or renew) a lease to `holder`, returning it. Renewals are
    /// piggybacked on heartbeats in the paper; callers simply invoke this on
    /// every heartbeat.
    pub fn grant(&self, holder: LeaseHolder) -> Lease {
        let lease = Lease {
            holder,
            expires_at_nanos: self.clock.now_nanos() + self.duration.as_nanos() as u64,
        };
        self.leases.lock().insert(holder, lease);
        lease
    }

    /// True if `holder` currently holds an unexpired lease.
    pub fn is_valid(&self, holder: LeaseHolder) -> bool {
        self.leases
            .lock()
            .get(&holder)
            .map(|l| l.expires_at_nanos > self.clock.now_nanos())
            .unwrap_or(false)
    }

    /// Revoke a lease explicitly (e.g. graceful shutdown).
    pub fn revoke(&self, holder: LeaseHolder) {
        self.leases.lock().remove(&holder);
    }

    /// Holders whose leases have expired — candidates for failure handling.
    /// "If the coordinator loses communication with an LTC, it may safely
    /// grant a new lease on the LTC's assigned ranges to another LTC after
    /// the old lease expires."
    pub fn expired(&self) -> Vec<LeaseHolder> {
        let now = self.clock.now_nanos();
        self.leases
            .lock()
            .values()
            .filter(|l| l.expires_at_nanos <= now)
            .map(|l| l.holder)
            .collect()
    }

    /// Number of tracked leases (valid or expired).
    pub fn len(&self) -> usize {
        self.leases.lock().len()
    }

    /// True if no leases are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::clock::manual_clock;

    #[test]
    fn leases_expire_without_renewal() {
        let (clock, handle) = manual_clock();
        let table = LeaseTable::new(clock, Duration::from_millis(100));
        let holder = LeaseHolder::Ltc(1);
        table.grant(holder);
        assert!(table.is_valid(holder));
        assert!(table.expired().is_empty());
        handle.advance(Duration::from_millis(150));
        assert!(!table.is_valid(holder));
        assert_eq!(table.expired(), vec![holder]);
    }

    #[test]
    fn renewal_extends_the_lease() {
        let (clock, handle) = manual_clock();
        let table = LeaseTable::new(clock, Duration::from_millis(100));
        let holder = LeaseHolder::Stoc(3);
        table.grant(holder);
        handle.advance(Duration::from_millis(80));
        table.grant(holder);
        handle.advance(Duration::from_millis(80));
        assert!(table.is_valid(holder), "renewed lease must still be valid");
    }

    #[test]
    fn revoke_and_unknown_holders() {
        let (clock, _handle) = manual_clock();
        let table = LeaseTable::new(clock, Duration::from_millis(100));
        assert!(table.is_empty());
        assert!(!table.is_valid(LeaseHolder::Ltc(9)));
        table.grant(LeaseHolder::Ltc(9));
        assert_eq!(table.len(), 1);
        table.revoke(LeaseHolder::Ltc(9));
        assert!(!table.is_valid(LeaseHolder::Ltc(9)));
        assert!(table.is_empty());
    }
}
