//! Log records.
//!
//! "A log record is self-contained and is in the form of (log record size,
//! memtable id, key size, key, value size, value, sequence number)."
//! (Section 5). We additionally carry the value type so deletes can be
//! replayed, and a CRC over the payload so torn or zero-filled regions are
//! detected during recovery.

use nova_common::checksum;
use nova_common::types::Entry;
use nova_common::varint::{
    decode_fixed32, decode_length_prefixed_slice, decode_varint64, put_fixed32, put_length_prefixed_slice,
    put_varint64,
};
use nova_common::{Error, MemtableId, Result, SequenceNumber, ValueType};

/// A single self-contained log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The memtable the write was applied to.
    pub memtable_id: MemtableId,
    /// User key.
    pub key: Vec<u8>,
    /// Value bytes (empty for deletes).
    pub value: Vec<u8>,
    /// Sequence number of the write.
    pub sequence: SequenceNumber,
    /// Put or delete.
    pub value_type: ValueType,
}

impl LogRecord {
    /// Build a record from an entry destined for `memtable_id`.
    pub fn from_entry(memtable_id: MemtableId, entry: &Entry) -> Self {
        LogRecord {
            memtable_id,
            key: entry.key.to_vec(),
            value: entry.value.to_vec(),
            sequence: entry.sequence,
            value_type: entry.value_type,
        }
    }

    /// Convert back to an entry.
    pub fn to_entry(&self) -> Entry {
        Entry {
            key: self.key.clone().into(),
            sequence: self.sequence,
            value_type: self.value_type,
            value: self.value.clone().into(),
        }
    }

    /// Serialize the record: `[u32 total size][u32 crc][payload]`, where the
    /// payload is `(memtable id, key, value type, value, sequence number)`.
    /// A size of zero marks the end of a zero-initialized log region.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.key.len() + self.value.len() + 24);
        put_varint64(&mut payload, self.memtable_id.0);
        put_length_prefixed_slice(&mut payload, &self.key);
        payload.push(self.value_type as u8);
        put_length_prefixed_slice(&mut payload, &self.value);
        put_varint64(&mut payload, self.sequence);
        let mut out = Vec::with_capacity(payload.len() + 8);
        put_fixed32(&mut out, payload.len() as u32);
        put_fixed32(&mut out, checksum::mask(checksum::crc32c(&payload)));
        out.extend_from_slice(&payload);
        out
    }

    /// Size of the encoded record in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// Decode a record from the front of `src`. Returns `Ok(None)` when the
    /// buffer starts with a zero size (the end of the written region) and the
    /// record plus bytes consumed otherwise.
    pub fn decode(src: &[u8]) -> Result<Option<(LogRecord, usize)>> {
        if src.len() < 8 {
            return Ok(None);
        }
        let size = decode_fixed32(src)? as usize;
        if size == 0 {
            return Ok(None);
        }
        if src.len() < 8 + size {
            return Err(Error::Corruption("truncated log record".into()));
        }
        let stored_crc = checksum::unmask(decode_fixed32(&src[4..])?);
        let payload = &src[8..8 + size];
        if checksum::crc32c(payload) != stored_crc {
            return Err(Error::Corruption("log record checksum mismatch".into()));
        }
        let mut n = 0usize;
        let (mid, c) = decode_varint64(&payload[n..])?;
        n += c;
        let (key, c) = decode_length_prefixed_slice(&payload[n..])?;
        let key = key.to_vec();
        n += c;
        let vt = ValueType::from_u8(payload[n])
            .ok_or_else(|| Error::Corruption("invalid value type in log record".into()))?;
        n += 1;
        let (value, c) = decode_length_prefixed_slice(&payload[n..])?;
        let value = value.to_vec();
        n += c;
        let (sequence, _) = decode_varint64(&payload[n..])?;
        Ok(Some((
            LogRecord {
                memtable_id: MemtableId(mid),
                key,
                value,
                sequence,
                value_type: vt,
            },
            8 + size,
        )))
    }
}

/// Parse every record from a log buffer, stopping at the first zero size (the
/// unwritten, zero-filled tail of an in-memory region).
pub fn parse_records(buffer: &[u8]) -> Result<Vec<LogRecord>> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < buffer.len() {
        match LogRecord::decode(&buffer[offset..])? {
            Some((record, consumed)) => {
                out.push(record);
                offset += consumed;
            }
            None => break,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn record(i: u64) -> LogRecord {
        LogRecord {
            memtable_id: MemtableId(i % 7),
            key: format!("key-{i}").into_bytes(),
            value: format!("value-{i}").into_bytes(),
            sequence: i,
            value_type: if i.is_multiple_of(5) {
                ValueType::Deletion
            } else {
                ValueType::Value
            },
        }
    }

    #[test]
    fn single_record_round_trips() {
        let r = record(3);
        let encoded = r.encode();
        assert_eq!(encoded.len(), r.encoded_len());
        let (decoded, n) = LogRecord::decode(&encoded).unwrap().unwrap();
        assert_eq!(decoded, r);
        assert_eq!(n, encoded.len());
    }

    #[test]
    fn entry_conversion_round_trips() {
        let e = Entry::put(&b"k"[..], 9, &b"v"[..]);
        let r = LogRecord::from_entry(MemtableId(4), &e);
        assert_eq!(r.to_entry(), e);
        let d = Entry::delete(&b"k"[..], 10);
        let r = LogRecord::from_entry(MemtableId(4), &d);
        assert_eq!(r.to_entry(), d);
    }

    #[test]
    fn zero_filled_tail_terminates_parsing() {
        let mut buffer = Vec::new();
        for i in 0..10 {
            buffer.extend_from_slice(&record(i).encode());
        }
        // Simulate an in-memory region larger than the written prefix.
        buffer.extend_from_slice(&[0u8; 256]);
        let records = parse_records(&buffer).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[4], record(4));
    }

    #[test]
    fn corruption_is_detected() {
        let mut encoded = record(1).encode();
        encoded[10] ^= 0xff;
        assert!(LogRecord::decode(&encoded).is_err());
        // A record whose declared size exceeds the buffer is truncated.
        let encoded = record(1).encode();
        assert!(LogRecord::decode(&encoded[..encoded.len() - 2]).is_err());
    }

    #[test]
    fn empty_buffer_parses_to_nothing() {
        assert!(parse_records(&[]).unwrap().is_empty());
        assert!(parse_records(&[0u8; 64]).unwrap().is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_streams_of_records_round_trip(
            keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..32),
        ) {
            let records: Vec<LogRecord> = keys
                .iter()
                .enumerate()
                .map(|(i, k)| LogRecord {
                    memtable_id: MemtableId(i as u64),
                    key: k.clone(),
                    value: k.iter().rev().copied().collect(),
                    sequence: i as u64 * 13,
                    value_type: ValueType::Value,
                })
                .collect();
            let mut buffer = Vec::new();
            for r in &records {
                buffer.extend_from_slice(&r.encode());
            }
            buffer.extend_from_slice(&[0u8; 16]);
            let parsed = parse_records(&buffer).unwrap();
            prop_assert_eq!(parsed, records);
        }
    }
}
