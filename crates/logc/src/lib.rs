//! # nova-logc
//!
//! The Logging Component (LogC) of Nova-LSM (Section 5 of the paper).
//!
//! LogC separates the *availability* of log records from their *durability*:
//!
//! * **Availability** — log records are replicated to in-memory StoC files
//!   using one-sided `RDMA WRITE`s; a failed LTC recovers 4 GB of log records
//!   in under a second by fetching them with `RDMA READ` at line rate.
//! * **Durability** — log records are additionally appended to persistent
//!   StoC files, charging the StoC disk.
//!
//! A LogC instance is a library embedded in an LTC; one log file exists per
//! memtable and is deleted when the memtable is flushed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod logc;
pub mod record;

pub use logc::{log_file_name, log_prefix, LogC};
pub use record::{parse_records, LogRecord};
