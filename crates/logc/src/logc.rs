//! The Logging Component.
//!
//! "LogC constructs a log file for each memtable and generates a log record
//! prior to writing to the memtable. … The log file may be either in memory
//! (availability) or persistent (durability)." (Section 5).
//!
//! In availability mode each log file is an in-memory StoC file replicated to
//! `replicas` StoCs; every append is one `RDMA WRITE` per replica and never
//! involves a StoC CPU (Section 6.1). In durability mode records are also
//! appended to a persistent StoC log, which charges the StoC's disk.

use crate::record::{parse_records, LogRecord};
use nova_common::config::LogPolicy;
use nova_common::{Error, MemtableId, RangeId, Result, StocId};
use nova_stoc::{MemFileHandle, StocClient};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Naming scheme for log files: `log/<range>/<memtable id>`.
pub fn log_file_name(range: RangeId, memtable: MemtableId) -> String {
    format!("log/{}/{}", range.0, memtable.0)
}

/// Prefix matching every log file of a range.
pub fn log_prefix(range: RangeId) -> String {
    format!("log/{}/", range.0)
}

/// The state of one open log file.
#[derive(Debug, Clone)]
struct OpenLog {
    /// In-memory replicas (availability).
    replicas: Vec<MemFileHandle>,
    /// StoC holding the persistent copy (durability).
    persistent: Option<StocId>,
    /// Next append offset within the in-memory replicas.
    offset: u64,
    /// Capacity of the in-memory replicas.
    capacity: u64,
}

/// The logging component. One instance is embedded in each LTC ("a LogC is a
/// library integrated into an LTC", Section 3).
pub struct LogC {
    client: StocClient,
    policy: LogPolicy,
    /// Approximate size of a log file — the paper sizes it like the memtable.
    log_file_size: u64,
    open: Mutex<HashMap<(RangeId, MemtableId), OpenLog>>,
}

impl std::fmt::Debug for LogC {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogC")
            .field("policy", &self.policy)
            .field("open_files", &self.open.lock().len())
            .finish()
    }
}

impl LogC {
    /// Create a logging component.
    pub fn new(client: StocClient, policy: LogPolicy, log_file_size: u64) -> Self {
        LogC {
            client,
            policy,
            log_file_size,
            open: Mutex::new(HashMap::new()),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> LogPolicy {
        self.policy
    }

    /// Choose the StoCs that hold the replicas of a log file. Replicas are
    /// spread deterministically by hashing the (range, memtable) pair so that
    /// different memtables use different StoCs.
    fn replica_stocs(&self, range: RangeId, memtable: MemtableId, count: u32) -> Result<Vec<StocId>> {
        // Only placement-eligible StoCs: new log files must not land on a
        // draining StoC that is about to be decommissioned.
        let all = self.client.directory().placeable();
        if all.is_empty() {
            return Err(Error::Unavailable("no StoCs registered for logging".into()));
        }
        let start = (range.0 as u64 * 1_000_003 + memtable.0) as usize % all.len();
        Ok((0..count as usize)
            .map(|i| all[(start + i) % all.len()])
            .collect())
    }

    /// Create the log file(s) for a new memtable. A no-op when logging is
    /// disabled.
    pub fn create_log_file(&self, range: RangeId, memtable: MemtableId) -> Result<()> {
        if !self.policy.enabled() {
            return Ok(());
        }
        let name = log_file_name(range, memtable);
        let mut replicas = Vec::new();
        let memory_replicas = self.policy.memory_replicas();
        if memory_replicas > 0 {
            for stoc in self.replica_stocs(range, memtable, memory_replicas)? {
                replicas.push(self.client.open_mem_file(stoc, &name, self.log_file_size)?);
            }
        }
        let persistent = if self.policy.durable() {
            Some(self.replica_stocs(range, memtable, 1)?[0])
        } else {
            None
        };
        self.open.lock().insert(
            (range, memtable),
            OpenLog {
                replicas,
                persistent,
                offset: 0,
                capacity: self.log_file_size,
            },
        );
        Ok(())
    }

    /// Append a log record for a write destined for `memtable`. Must be
    /// called before applying the write to the memtable.
    pub fn append(&self, range: RangeId, record: &LogRecord) -> Result<()> {
        if !self.policy.enabled() {
            return Ok(());
        }
        let key = (range, record.memtable_id);
        let encoded = record.encode();
        let mut open = self.open.lock();
        let log = open.get_mut(&key).ok_or_else(|| {
            Error::InvalidArgument(format!("no open log file for {} {}", range, record.memtable_id))
        })?;
        if log.offset + encoded.len() as u64 > log.capacity {
            // The in-memory region is full; in practice the memtable fills
            // first because records mirror memtable inserts, but guard anyway.
            return Err(Error::Unavailable("log file is full".into()));
        }
        for replica in &log.replicas {
            self.client.write_mem(replica, log.offset, &encoded)?;
        }
        if let Some(stoc) = log.persistent {
            self.client
                .append_log(stoc, &log_file_name(range, record.memtable_id), &encoded)?;
        }
        log.offset += encoded.len() as u64;
        Ok(())
    }

    /// Delete the log file(s) of a memtable once it has been flushed to an
    /// SSTable (the log records are no longer needed for recovery).
    pub fn delete_log_file(&self, range: RangeId, memtable: MemtableId) -> Result<()> {
        if !self.policy.enabled() {
            return Ok(());
        }
        let name = log_file_name(range, memtable);
        if let Some(log) = self.open.lock().remove(&(range, memtable)) {
            for replica in &log.replicas {
                let _ = self.client.delete_mem_file(replica.stoc, &name);
            }
            if let Some(stoc) = log.persistent {
                let _ = self.client.delete_log(stoc, &name);
            }
        }
        Ok(())
    }

    /// Number of log files currently open.
    pub fn open_files(&self) -> usize {
        self.open.lock().len()
    }

    /// Bytes appended to the in-memory replica of a specific log file so far
    /// (for tests and statistics).
    pub fn log_bytes(&self, range: RangeId, memtable: MemtableId) -> u64 {
        self.open
            .lock()
            .get(&(range, memtable))
            .map(|l| l.offset)
            .unwrap_or(0)
    }

    /// Recover every log record for a range by querying all StoCs for its log
    /// files and fetching them with one-sided reads (Section 4.5: "Its LogC
    /// queries the StoCs for log files and uses RDMA READ to fetch their log
    /// records"). `recovery_threads` controls the parallelism (Figure 17b).
    ///
    /// Returns the records grouped by memtable id.
    pub fn recover_range(
        &self,
        range: RangeId,
        recovery_threads: usize,
    ) -> Result<HashMap<MemtableId, Vec<LogRecord>>> {
        let prefix = log_prefix(range);
        // Discover (stoc, name) pairs holding log files for this range.
        let mut sources: Vec<(StocId, String, bool)> = Vec::new();
        for stoc in self.client.directory().all() {
            if let Ok(names) = self.client.list_mem_files(stoc, &prefix) {
                for name in names {
                    sources.push((stoc, name, false));
                }
            }
            if let Ok(names) = self.client.list_logs(stoc, &prefix) {
                for name in names {
                    sources.push((stoc, name, true));
                }
            }
        }
        // Deduplicate replicas: recover each log file name once, preferring
        // in-memory copies (they are fetched at line rate with RDMA READ).
        sources.sort_by(|a, b| a.1.cmp(&b.1).then(a.2.cmp(&b.2)));
        sources.dedup_by(|a, b| a.1 == b.1);

        // One fetch job per log file, fanned out over a pool sized by the
        // experiment's recovery-thread knob (Figure 17b), not the client's
        // steady-state I/O width.
        let client = &self.client;
        let pool = nova_stoc::IoPool::new(recovery_threads);
        let fetched = pool.run_all(
            sources
                .into_iter()
                .map(|(stoc, name, persistent)| {
                    move || -> Result<Vec<LogRecord>> {
                        let buffer = if persistent {
                            client.read_log(stoc, &name)?
                        } else {
                            let handle = client.get_mem_file(stoc, &name)?;
                            client.read_mem(&handle, 0, handle.size as usize)?.to_vec()
                        };
                        parse_records(&buffer)
                    }
                })
                .collect(),
        )?;
        let all_records: Vec<LogRecord> = fetched.into_iter().flatten().collect();

        let mut grouped: HashMap<MemtableId, Vec<LogRecord>> = HashMap::new();
        for record in all_records {
            grouped.entry(record.memtable_id).or_default().push(record);
        }
        // Replay order within a memtable follows sequence numbers.
        for records in grouped.values_mut() {
            records.sort_by_key(|r| r.sequence);
        }
        Ok(grouped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::config::DiskConfig;
    use nova_common::types::Entry;
    use nova_common::NodeId;
    use nova_fabric::Fabric;
    use nova_stoc::{SimDisk, StocDirectory, StocServer, StorageMedium};
    use std::sync::Arc;

    fn cluster(num_stocs: usize) -> (Arc<Fabric>, Vec<StocServer>, StocClient) {
        let fabric = Fabric::with_defaults(num_stocs + 1);
        let directory = StocDirectory::new();
        let servers: Vec<StocServer> = (0..num_stocs)
            .map(|i| {
                let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(DiskConfig {
                    bandwidth_bytes_per_sec: u64::MAX / 2,
                    seek_micros: 0,
                    accounting_only: true,
                }));
                StocServer::start(
                    StocId(i as u32),
                    NodeId(i as u32 + 1),
                    &fabric,
                    directory.clone(),
                    medium,
                    2,
                    1,
                )
            })
            .collect();
        let client = StocClient::new(fabric.endpoint(NodeId(0)), directory);
        (fabric, servers, client)
    }

    fn entry(i: u64) -> Entry {
        Entry::put(
            format!("key-{i:04}").into_bytes(),
            i + 1,
            format!("value-{i}").into_bytes(),
        )
    }

    #[test]
    fn disabled_policy_is_a_noop() {
        let (_f, servers, client) = cluster(1);
        let logc = LogC::new(client, LogPolicy::Disabled, 1 << 16);
        logc.create_log_file(RangeId(0), MemtableId(1)).unwrap();
        logc.append(RangeId(0), &LogRecord::from_entry(MemtableId(1), &entry(0)))
            .unwrap();
        assert_eq!(logc.open_files(), 0);
        assert!(logc.recover_range(RangeId(0), 1).unwrap().is_empty());
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn replicated_in_memory_logging_and_recovery() {
        let (_f, servers, client) = cluster(3);
        let logc = LogC::new(client, LogPolicy::InMemoryReplicated { replicas: 3 }, 1 << 16);
        let range = RangeId(7);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        logc.create_log_file(range, MemtableId(2)).unwrap();
        for i in 0..50u64 {
            let mid = MemtableId(1 + i % 2);
            logc.append(range, &LogRecord::from_entry(mid, &entry(i)))
                .unwrap();
        }
        assert!(logc.log_bytes(range, MemtableId(1)) > 0);
        let recovered = logc.recover_range(range, 4).unwrap();
        assert_eq!(recovered.len(), 2);
        let total: usize = recovered.values().map(|v| v.len()).sum();
        assert_eq!(total, 50);
        // Records within a memtable are ordered by sequence number.
        for records in recovered.values() {
            assert!(records.windows(2).all(|w| w[0].sequence <= w[1].sequence));
        }
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn deleting_a_log_file_removes_it_from_recovery() {
        let (_f, servers, client) = cluster(2);
        let logc = LogC::new(client, LogPolicy::InMemoryReplicated { replicas: 2 }, 1 << 16);
        let range = RangeId(1);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        logc.create_log_file(range, MemtableId(2)).unwrap();
        logc.append(range, &LogRecord::from_entry(MemtableId(1), &entry(1)))
            .unwrap();
        logc.append(range, &LogRecord::from_entry(MemtableId(2), &entry(2)))
            .unwrap();
        logc.delete_log_file(range, MemtableId(1)).unwrap();
        assert_eq!(logc.open_files(), 1);
        let recovered = logc.recover_range(range, 1).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered.contains_key(&MemtableId(2)));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn persistent_logging_survives_memory_replica_loss() {
        let (fabric, servers, client) = cluster(2);
        let logc = LogC::new(
            client.clone(),
            LogPolicy::PersistentWithMemory { replicas: 1 },
            1 << 16,
        );
        let range = RangeId(3);
        logc.create_log_file(range, MemtableId(9)).unwrap();
        for i in 0..10u64 {
            logc.append(range, &LogRecord::from_entry(MemtableId(9), &entry(i)))
                .unwrap();
        }
        // Recovery sees records even when only the persistent copy is used.
        let recovered = logc.recover_range(range, 2).unwrap();
        assert_eq!(recovered[&MemtableId(9)].len(), 10);
        let _ = fabric;
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn appends_to_unknown_log_file_fail() {
        let (_f, servers, client) = cluster(1);
        let logc = LogC::new(client, LogPolicy::InMemoryReplicated { replicas: 1 }, 1 << 16);
        let err = logc
            .append(RangeId(0), &LogRecord::from_entry(MemtableId(5), &entry(0)))
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn log_file_capacity_is_enforced() {
        let (_f, servers, client) = cluster(1);
        let logc = LogC::new(client, LogPolicy::InMemoryReplicated { replicas: 1 }, 64);
        let range = RangeId(0);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        let big = Entry::put(&b"key"[..], 1, vec![0u8; 128]);
        let err = logc
            .append(range, &LogRecord::from_entry(MemtableId(1), &big))
            .unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn naming_scheme() {
        assert_eq!(log_file_name(RangeId(3), MemtableId(17)), "log/3/17");
        assert_eq!(log_prefix(RangeId(3)), "log/3/");
        assert!(log_file_name(RangeId(3), MemtableId(17)).starts_with(&log_prefix(RangeId(3))));
    }
}
