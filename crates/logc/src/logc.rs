//! The Logging Component.
//!
//! "LogC constructs a log file for each memtable and generates a log record
//! prior to writing to the memtable. … The log file may be either in memory
//! (availability) or persistent (durability)." (Section 5).
//!
//! In availability mode each log file is an in-memory StoC file replicated to
//! `replicas` StoCs; appends are one-sided `RDMA WRITE`s that never involve a
//! StoC CPU (Section 6.1). In durability mode records are also appended to a
//! persistent StoC log, which charges the StoC's disk.
//!
//! # Group commit
//!
//! The paper's protocol issues one `RDMA WRITE` per replica *per record*, so
//! with η replicas every put pays η sequential fabric round trips and all
//! writers of a memtable serialize behind them. This implementation amortizes
//! that cost with leader/follower group commit: writers enqueue their encoded
//! records into a per-log-file commit buffer; the first writer to find no
//! leader active becomes the leader, drains the buffer (bounded by the
//! `group_commit_bytes` / `group_commit_max_records` knobs), issues **one**
//! write per replica for the whole group — fanned out concurrently across
//! replicas through the StoC client's I/O pool — plus one persistent append,
//! then wakes the group. Followers block on a condvar until their records are
//! committed (or failed).
//!
//! Records are drained strictly in enqueue order and written back-to-back at
//! consecutive offsets, so the byte layout of the log file is identical to
//! the serial per-record protocol at *every* group size — recovery is
//! untouched. A failed group write rolls its offset back (the next group
//! overwrites the partial bytes), mirroring the serial path's behaviour of
//! reusing the offset of a failed append.

use crate::record::{parse_records, LogRecord};
use nova_common::config::LogPolicy;
use nova_common::{Error, MemtableId, RangeId, Result, StocId};
use nova_stoc::{MemFileHandle, StocClient};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::sync::{Condvar, Mutex as StdMutex};

/// Default cap on the bytes one group-commit write carries (mirrors
/// `ClusterConfig::group_commit_bytes`).
pub const DEFAULT_GROUP_COMMIT_BYTES: usize = 64 << 10;

/// Default cap on the records one group-commit write carries (mirrors
/// `ClusterConfig::group_commit_max_records`).
pub const DEFAULT_GROUP_COMMIT_MAX_RECORDS: usize = 64;

/// Naming scheme for log files: `log/<range>/<memtable id>`.
pub fn log_file_name(range: RangeId, memtable: MemtableId) -> String {
    format!("log/{}/{}", range.0, memtable.0)
}

/// Prefix matching every log file of a range.
pub fn log_prefix(range: RangeId) -> String {
    format!("log/{}/", range.0)
}

/// The mutable group-commit state of one open log file. Tickets are 1-based
/// record serials: a writer's records are committed once `committed` reaches
/// its last ticket.
#[derive(Debug, Default)]
struct GroupState {
    /// Encoded records awaiting a leader, concatenated in enqueue order.
    pending: Vec<u8>,
    /// Per-record byte lengths of `pending` (front = oldest), so the leader
    /// cuts groups on record boundaries.
    pending_lens: VecDeque<usize>,
    /// Tickets issued to enqueued records.
    enqueued: u64,
    /// Records removed from `pending` by a leader (assigned to a group).
    taken: u64,
    /// Byte offset the next group will be written at.
    write_offset: u64,
    /// Records whose group write has completed (successfully or not).
    committed: u64,
    /// Bytes durably written to the replicas.
    committed_bytes: u64,
    /// True while a leader is draining and writing.
    leader_active: bool,
    /// Ticket ranges whose group write failed, with the error every writer
    /// of the range receives. Failure-path only; entries accumulate for the
    /// (memtable-flush-bounded) lifetime of the log file.
    failures: Vec<(u64, u64, Error)>,
}

/// One open log file: the immutable placement plus the commit buffer.
#[derive(Debug)]
struct LogFile {
    name: String,
    /// In-memory replicas (availability).
    replicas: Vec<MemFileHandle>,
    /// StoC holding the persistent copy (durability).
    persistent: Option<StocId>,
    /// Capacity of the in-memory replicas.
    capacity: u64,
    /// Commit buffer; `std` primitives because the vendored `parking_lot`
    /// shim has no condvar.
    state: StdMutex<GroupState>,
    cv: Condvar,
}

/// The logging component. One instance is embedded in each LTC ("a LogC is a
/// library integrated into an LTC", Section 3).
pub struct LogC {
    client: StocClient,
    policy: LogPolicy,
    /// Approximate size of a log file — the paper sizes it like the memtable.
    log_file_size: u64,
    /// Cap on the bytes one group write carries.
    group_bytes: usize,
    /// Cap on the records one group write carries (1 = per-record logging).
    group_max_records: usize,
    /// Open log files. The map lock is held only to resolve the `Arc`; all
    /// I/O and waiting happens on the per-file commit buffer, so writers to
    /// different memtables never serialize on each other.
    open: Mutex<HashMap<(RangeId, MemtableId), Arc<LogFile>>>,
    /// Observability: enqueue-to-durable latency plus group-size histograms.
    metrics: Arc<nova_obs::Metrics>,
    group_records_hist: Arc<nova_obs::AtomicHistogram>,
    group_bytes_hist: Arc<nova_obs::AtomicHistogram>,
}

impl std::fmt::Debug for LogC {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogC")
            .field("policy", &self.policy)
            .field("group_bytes", &self.group_bytes)
            .field("group_max_records", &self.group_max_records)
            .field("open_files", &self.open.lock().len())
            .finish()
    }
}

impl LogC {
    /// Create a logging component with the default group-commit bounds.
    pub fn new(client: StocClient, policy: LogPolicy, log_file_size: u64) -> Self {
        let metrics = nova_obs::Metrics::disabled();
        let group_records_hist = metrics.histogram("logc.group.records");
        let group_bytes_hist = metrics.histogram("logc.group.bytes");
        LogC {
            client,
            policy,
            log_file_size,
            group_bytes: DEFAULT_GROUP_COMMIT_BYTES,
            group_max_records: DEFAULT_GROUP_COMMIT_MAX_RECORDS,
            open: Mutex::new(HashMap::new()),
            metrics,
            group_records_hist,
            group_bytes_hist,
        }
    }

    /// Set the group-commit bounds (`ClusterConfig::group_commit_bytes` /
    /// `group_commit_max_records`). `max_records = 1` restores per-record
    /// logging; both are clamped to at least 1.
    pub fn with_group_commit(mut self, bytes: usize, max_records: usize) -> Self {
        self.group_bytes = bytes.max(1);
        self.group_max_records = max_records.max(1);
        self
    }

    /// Attach a metrics hub (builder style). Appends record their
    /// enqueue-to-durable latency against [`nova_obs::Layer::Logc`]; the
    /// group-commit leader records each group's record count and byte size
    /// into the `logc.group.records` / `logc.group.bytes` histograms.
    pub fn with_metrics(mut self, metrics: Arc<nova_obs::Metrics>) -> Self {
        self.group_records_hist = metrics.histogram("logc.group.records");
        self.group_bytes_hist = metrics.histogram("logc.group.bytes");
        self.metrics = metrics;
        self
    }

    /// The configured policy.
    pub fn policy(&self) -> LogPolicy {
        self.policy
    }

    /// The configured group-commit bounds `(bytes, max_records)`.
    pub fn group_commit_bounds(&self) -> (usize, usize) {
        (self.group_bytes, self.group_max_records)
    }

    /// Choose the StoCs that hold the replicas of a log file. Replicas are
    /// spread deterministically by hashing the (range, memtable) pair so that
    /// different memtables use different StoCs.
    fn replica_stocs(&self, range: RangeId, memtable: MemtableId, count: u32) -> Result<Vec<StocId>> {
        // Only placement-eligible StoCs: new log files must not land on a
        // draining StoC that is about to be decommissioned.
        let all = self.client.directory().placeable();
        if all.is_empty() {
            return Err(Error::Unavailable("no StoCs registered for logging".into()));
        }
        let start = (range.0 as u64 * 1_000_003 + memtable.0) as usize % all.len();
        Ok((0..count as usize)
            .map(|i| all[(start + i) % all.len()])
            .collect())
    }

    /// Create the log file(s) for a new memtable. A no-op when logging is
    /// disabled.
    pub fn create_log_file(&self, range: RangeId, memtable: MemtableId) -> Result<()> {
        if !self.policy.enabled() {
            return Ok(());
        }
        let name = log_file_name(range, memtable);
        let mut replicas = Vec::new();
        let memory_replicas = self.policy.memory_replicas();
        if memory_replicas > 0 {
            for stoc in self.replica_stocs(range, memtable, memory_replicas)? {
                replicas.push(self.client.open_mem_file(stoc, &name, self.log_file_size)?);
            }
        }
        let persistent = if self.policy.durable() {
            Some(self.replica_stocs(range, memtable, 1)?[0])
        } else {
            None
        };
        self.open.lock().insert(
            (range, memtable),
            Arc::new(LogFile {
                name,
                replicas,
                persistent,
                capacity: self.log_file_size,
                state: StdMutex::new(GroupState::default()),
                cv: Condvar::new(),
            }),
        );
        Ok(())
    }

    fn log_file(&self, range: RangeId, memtable: MemtableId) -> Result<Arc<LogFile>> {
        self.open
            .lock()
            .get(&(range, memtable))
            .cloned()
            .ok_or_else(|| Error::InvalidArgument(format!("no open log file for {range} {memtable}")))
    }

    /// Append a log record for a write destined for `memtable`. Must be
    /// called before applying the write to the memtable; once it returns
    /// `Ok`, the record has been replicated (and persisted, per the policy).
    pub fn append(&self, range: RangeId, record: &LogRecord) -> Result<()> {
        if !self.policy.enabled() {
            return Ok(());
        }
        let file = self.log_file(range, record.memtable_id)?;
        let encoded = record.encode();
        let len = encoded.len();
        self.commit(&file, encoded, &[len])
    }

    /// Append a batch of log records as one group per destination memtable:
    /// the records of each memtable are enqueued together and therefore
    /// travel in the same group write(s), in batch order. Returns the first
    /// error; on error, records of *other* memtables in the batch may
    /// already be durable — they replay at recovery as unacknowledged
    /// writes, which the write-ahead contract permits.
    pub fn append_batch(&self, range: RangeId, records: &[LogRecord]) -> Result<()> {
        if !self.policy.enabled() || records.is_empty() {
            return Ok(());
        }
        // Group by memtable, preserving batch order within each group.
        let mut groups: Vec<(MemtableId, Vec<u8>, Vec<usize>)> = Vec::new();
        for record in records {
            let encoded = record.encode();
            let len = encoded.len();
            match groups.iter_mut().find(|(mid, _, _)| *mid == record.memtable_id) {
                Some((_, bytes, lens)) => {
                    lens.push(len);
                    bytes.extend_from_slice(&encoded);
                }
                None => groups.push((record.memtable_id, encoded, vec![len])),
            }
        }
        // Resolve every destination before committing anything, so a typo'd
        // memtable fails the batch without logging a partial prefix.
        let files: Vec<Arc<LogFile>> = groups
            .iter()
            .map(|(mid, _, _)| self.log_file(range, *mid))
            .collect::<Result<_>>()?;
        for (file, (_, bytes, lens)) in files.iter().zip(groups) {
            self.commit(file, bytes, &lens)?;
        }
        Ok(())
    }

    /// Enqueue `lens.len()` records (`bytes` is their concatenation) into the
    /// file's commit buffer and block until they are durable: leader/follower
    /// group commit.
    fn commit(&self, file: &LogFile, bytes: Vec<u8>, lens: &[usize]) -> Result<()> {
        let _timed = self.metrics.layer(nova_obs::Layer::Logc);
        let mut state = file.state.lock().expect("log group state poisoned");
        // Capacity check against every byte enqueued or already assigned an
        // offset. In practice the memtable fills first because records
        // mirror memtable inserts, but guard anyway.
        if state.write_offset + (state.pending.len() + bytes.len()) as u64 > file.capacity {
            return Err(Error::Unavailable("log file is full".into()));
        }
        let first = state.enqueued + 1;
        state.enqueued += lens.len() as u64;
        let last = state.enqueued;
        state.pending.extend_from_slice(&bytes);
        state.pending_lens.extend(lens.iter().copied());
        loop {
            if state.committed >= last {
                // Our group write completed; surface its outcome.
                return match state
                    .failures
                    .iter()
                    .find(|(lo, hi, _)| *lo <= last && first <= *hi)
                {
                    Some((_, _, e)) => Err(e.clone()),
                    None => Ok(()),
                };
            }
            if state.leader_active {
                state = file.cv.wait(state).expect("log group state poisoned");
                continue;
            }
            // Become the leader: drain groups until our own records are in.
            state.leader_active = true;
            while state.committed < last {
                // Cut one group on record boundaries, bounded by the knobs
                // (a single oversized record still travels alone).
                let mut group_bytes = 0usize;
                let mut group_records = 0u64;
                while let Some(&len) = state.pending_lens.front() {
                    if group_records > 0
                        && (group_records >= self.group_max_records as u64
                            || group_bytes + len > self.group_bytes)
                    {
                        break;
                    }
                    group_bytes += len;
                    group_records += 1;
                    state.pending_lens.pop_front();
                }
                if self.metrics.is_enabled() {
                    self.group_records_hist.record(group_records);
                    self.group_bytes_hist.record(group_bytes as u64);
                }
                let group: Vec<u8> = state.pending.drain(..group_bytes).collect();
                let group_first = state.taken + 1;
                state.taken += group_records;
                let group_last = state.taken;
                let offset = state.write_offset;
                state.write_offset += group_bytes as u64;
                drop(state);
                let outcome = self.write_group(file, offset, &group);
                if outcome.is_err() {
                    // The group may have landed on a subset of the replicas.
                    // Before the offset is reused, best-effort zero-fill the
                    // extent on every replica: a shorter successor group
                    // would otherwise leave mid-record remnants of this one
                    // behind it, which recovery parses as corruption instead
                    // of the clean zero-size end marker. A replica that is
                    // unreachable here almost certainly rejected the group
                    // write microseconds earlier too and holds no partial
                    // bytes; best-effort is the strongest guarantee a failed
                    // node allows.
                    let zeros = vec![0u8; group_bytes];
                    let client = &self.client;
                    let _ = client.io_pool().run(
                        file.replicas
                            .iter()
                            .map(|replica| {
                                let zeros = &zeros;
                                move || client.write_mem(replica, offset, zeros)
                            })
                            .collect::<Vec<_>>(),
                    );
                }
                state = file.state.lock().expect("log group state poisoned");
                state.committed = group_last;
                match outcome {
                    Ok(()) => state.committed_bytes += group_bytes as u64,
                    Err(e) => {
                        // Reuse the offset: the next group overwrites the
                        // (zero-filled) extent, like the serial per-record
                        // path reused the offset of a failed append.
                        state.write_offset = offset;
                        state.failures.push((group_first, group_last, e));
                    }
                }
                file.cv.notify_all();
            }
            state.leader_active = false;
            // Wake a successor: records enqueued while we were writing need
            // a new leader.
            file.cv.notify_all();
        }
    }

    /// Issue one group write: the concatenated records land at `offset` of
    /// every in-memory replica — concurrently, through the client's I/O pool
    /// (`stoc_io_parallelism`; width 1 runs them serially in order) — plus
    /// one append to the persistent copy.
    fn write_group(&self, file: &LogFile, offset: u64, data: &[u8]) -> Result<()> {
        if !file.replicas.is_empty() {
            let client = &self.client;
            client.io_pool().run_all(
                file.replicas
                    .iter()
                    .map(|replica| move || client.write_mem(replica, offset, data))
                    .collect(),
            )?;
        }
        if let Some(stoc) = file.persistent {
            self.client.append_log(stoc, &file.name, data)?;
        }
        Ok(())
    }

    /// Delete the log file(s) of a memtable once it has been flushed to an
    /// SSTable (the log records are no longer needed for recovery).
    pub fn delete_log_file(&self, range: RangeId, memtable: MemtableId) -> Result<()> {
        if !self.policy.enabled() {
            return Ok(());
        }
        let name = log_file_name(range, memtable);
        if let Some(file) = self.open.lock().remove(&(range, memtable)) {
            for replica in &file.replicas {
                let _ = self.client.delete_mem_file(replica.stoc, &name);
            }
            if let Some(stoc) = file.persistent {
                let _ = self.client.delete_log(stoc, &name);
            }
        }
        Ok(())
    }

    /// Number of log files currently open.
    pub fn open_files(&self) -> usize {
        self.open.lock().len()
    }

    /// StoCs holding in-memory replicas of currently-open log files (with
    /// multiplicity). The self-healing supervisor uses this to count log
    /// replicas stranded on failed or draining StoCs: those heal through
    /// memtable rotation rather than copying, since log files die at flush.
    pub fn open_replica_stocs(&self) -> Vec<StocId> {
        self.open
            .lock()
            .values()
            .flat_map(|f| f.replicas.iter().map(|r| r.stoc))
            .collect()
    }

    /// Bytes durably appended to the in-memory replicas of a specific log
    /// file so far (for tests and statistics).
    pub fn log_bytes(&self, range: RangeId, memtable: MemtableId) -> u64 {
        self.open
            .lock()
            .get(&(range, memtable))
            .map(|f| f.state.lock().expect("log group state poisoned").committed_bytes)
            .unwrap_or(0)
    }

    /// Recover every log record for a range by querying all StoCs for its log
    /// files and fetching them with one-sided reads (Section 4.5: "Its LogC
    /// queries the StoCs for log files and uses RDMA READ to fetch their log
    /// records"). `recovery_threads` controls the parallelism (Figure 17b).
    ///
    /// Returns the records grouped by memtable id.
    pub fn recover_range(
        &self,
        range: RangeId,
        recovery_threads: usize,
    ) -> Result<HashMap<MemtableId, Vec<LogRecord>>> {
        let prefix = log_prefix(range);
        // Discover (stoc, name) pairs holding log files for this range.
        let mut sources: Vec<(StocId, String, bool)> = Vec::new();
        for stoc in self.client.directory().all() {
            if let Ok(names) = self.client.list_mem_files(stoc, &prefix) {
                for name in names {
                    sources.push((stoc, name, false));
                }
            }
            if let Ok(names) = self.client.list_logs(stoc, &prefix) {
                for name in names {
                    sources.push((stoc, name, true));
                }
            }
        }
        // Deduplicate replicas: recover each log file name once, preferring
        // in-memory copies (they are fetched at line rate with RDMA READ).
        sources.sort_by(|a, b| a.1.cmp(&b.1).then(a.2.cmp(&b.2)));
        sources.dedup_by(|a, b| a.1 == b.1);

        // One fetch job per log file, fanned out over a pool sized by the
        // experiment's recovery-thread knob (Figure 17b), not the client's
        // steady-state I/O width.
        let client = &self.client;
        let pool = nova_stoc::IoPool::new(recovery_threads);
        let fetched = pool.run_all(
            sources
                .into_iter()
                .map(|(stoc, name, persistent)| {
                    move || -> Result<Vec<LogRecord>> {
                        let buffer = if persistent {
                            client.read_log(stoc, &name)?
                        } else {
                            let handle = client.get_mem_file(stoc, &name)?;
                            client.read_mem(&handle, 0, handle.size as usize)?.to_vec()
                        };
                        parse_records(&buffer)
                    }
                })
                .collect(),
        )?;
        let all_records: Vec<LogRecord> = fetched.into_iter().flatten().collect();

        let mut grouped: HashMap<MemtableId, Vec<LogRecord>> = HashMap::new();
        for record in all_records {
            grouped.entry(record.memtable_id).or_default().push(record);
        }
        // Replay order within a memtable follows sequence numbers.
        for records in grouped.values_mut() {
            records.sort_by_key(|r| r.sequence);
        }
        Ok(grouped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_common::config::DiskConfig;
    use nova_common::types::Entry;
    use nova_common::NodeId;
    use nova_fabric::Fabric;
    use nova_stoc::{SimDisk, StocDirectory, StocServer, StorageMedium};
    use std::sync::Arc;

    fn cluster(num_stocs: usize) -> (Arc<Fabric>, Vec<StocServer>, StocClient) {
        let fabric = Fabric::with_defaults(num_stocs + 1);
        let directory = StocDirectory::new();
        let servers: Vec<StocServer> = (0..num_stocs)
            .map(|i| {
                let medium: Arc<dyn StorageMedium> = Arc::new(SimDisk::new(DiskConfig {
                    bandwidth_bytes_per_sec: u64::MAX / 2,
                    seek_micros: 0,
                    accounting_only: true,
                }));
                StocServer::start(
                    StocId(i as u32),
                    NodeId(i as u32 + 1),
                    &fabric,
                    directory.clone(),
                    medium,
                    2,
                    1,
                )
            })
            .collect();
        let client = StocClient::new(fabric.endpoint(NodeId(0)), directory);
        (fabric, servers, client)
    }

    fn entry(i: u64) -> Entry {
        Entry::put(
            format!("key-{i:04}").into_bytes(),
            i + 1,
            format!("value-{i}").into_bytes(),
        )
    }

    #[test]
    fn disabled_policy_is_a_noop() {
        let (_f, servers, client) = cluster(1);
        let logc = LogC::new(client, LogPolicy::Disabled, 1 << 16);
        logc.create_log_file(RangeId(0), MemtableId(1)).unwrap();
        logc.append(RangeId(0), &LogRecord::from_entry(MemtableId(1), &entry(0)))
            .unwrap();
        assert_eq!(logc.open_files(), 0);
        assert!(logc.recover_range(RangeId(0), 1).unwrap().is_empty());
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn replicated_in_memory_logging_and_recovery() {
        let (_f, servers, client) = cluster(3);
        let logc = LogC::new(client, LogPolicy::InMemoryReplicated { replicas: 3 }, 1 << 16);
        let range = RangeId(7);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        logc.create_log_file(range, MemtableId(2)).unwrap();
        for i in 0..50u64 {
            let mid = MemtableId(1 + i % 2);
            logc.append(range, &LogRecord::from_entry(mid, &entry(i)))
                .unwrap();
        }
        assert!(logc.log_bytes(range, MemtableId(1)) > 0);
        let recovered = logc.recover_range(range, 4).unwrap();
        assert_eq!(recovered.len(), 2);
        let total: usize = recovered.values().map(|v| v.len()).sum();
        assert_eq!(total, 50);
        // Records within a memtable are ordered by sequence number.
        for records in recovered.values() {
            assert!(records.windows(2).all(|w| w[0].sequence <= w[1].sequence));
        }
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn deleting_a_log_file_removes_it_from_recovery() {
        let (_f, servers, client) = cluster(2);
        let logc = LogC::new(client, LogPolicy::InMemoryReplicated { replicas: 2 }, 1 << 16);
        let range = RangeId(1);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        logc.create_log_file(range, MemtableId(2)).unwrap();
        logc.append(range, &LogRecord::from_entry(MemtableId(1), &entry(1)))
            .unwrap();
        logc.append(range, &LogRecord::from_entry(MemtableId(2), &entry(2)))
            .unwrap();
        logc.delete_log_file(range, MemtableId(1)).unwrap();
        assert_eq!(logc.open_files(), 1);
        let recovered = logc.recover_range(range, 1).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered.contains_key(&MemtableId(2)));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn persistent_logging_survives_memory_replica_loss() {
        let (fabric, servers, client) = cluster(2);
        let logc = LogC::new(
            client.clone(),
            LogPolicy::PersistentWithMemory { replicas: 1 },
            1 << 16,
        );
        let range = RangeId(3);
        logc.create_log_file(range, MemtableId(9)).unwrap();
        for i in 0..10u64 {
            logc.append(range, &LogRecord::from_entry(MemtableId(9), &entry(i)))
                .unwrap();
        }
        // Recovery sees records even when only the persistent copy is used.
        let recovered = logc.recover_range(range, 2).unwrap();
        assert_eq!(recovered[&MemtableId(9)].len(), 10);
        let _ = fabric;
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn appends_to_unknown_log_file_fail() {
        let (_f, servers, client) = cluster(1);
        let logc = LogC::new(client, LogPolicy::InMemoryReplicated { replicas: 1 }, 1 << 16);
        let err = logc
            .append(RangeId(0), &LogRecord::from_entry(MemtableId(5), &entry(0)))
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn log_file_capacity_is_enforced() {
        let (_f, servers, client) = cluster(1);
        let logc = LogC::new(client, LogPolicy::InMemoryReplicated { replicas: 1 }, 64);
        let range = RangeId(0);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        let big = Entry::put(&b"key"[..], 1, vec![0u8; 128]);
        let err = logc
            .append(range, &LogRecord::from_entry(MemtableId(1), &big))
            .unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn naming_scheme() {
        assert_eq!(log_file_name(RangeId(3), MemtableId(17)), "log/3/17");
        assert_eq!(log_prefix(RangeId(3)), "log/3/");
        assert!(log_file_name(RangeId(3), MemtableId(17)).starts_with(&log_prefix(RangeId(3))));
    }

    // ---- group commit ---------------------------------------------------

    /// Read back the raw bytes of the first in-memory replica of a log file.
    fn replica_bytes(logc: &LogC, client: &StocClient, range: RangeId, mid: MemtableId) -> Vec<u8> {
        let len = logc.log_bytes(range, mid) as usize;
        let handle = client
            .get_mem_file(
                logc.open.lock()[&(range, mid)].replicas[0].stoc,
                &log_file_name(range, mid),
            )
            .unwrap();
        client.read_mem(&handle, 0, len).unwrap().to_vec()
    }

    #[test]
    fn group_size_one_produces_byte_identical_serial_layout() {
        // Single-threaded appends through per-record logging (max_records 1)
        // and through wide-open group commit must both lay records out as
        // the plain concatenation of their encodings — the serial layout.
        let records: Vec<LogRecord> = (0..40u64)
            .map(|i| LogRecord::from_entry(MemtableId(1), &entry(i)))
            .collect();
        let expected: Vec<u8> = records.iter().flat_map(|r| r.encode()).collect();
        for (bytes, max_records) in [(1usize, 1usize), (64 << 10, 64)] {
            let (_f, servers, client) = cluster(2);
            let logc = LogC::new(
                client.clone(),
                LogPolicy::InMemoryReplicated { replicas: 2 },
                1 << 16,
            )
            .with_group_commit(bytes, max_records);
            let range = RangeId(5);
            logc.create_log_file(range, MemtableId(1)).unwrap();
            for r in &records {
                logc.append(range, r).unwrap();
            }
            assert_eq!(
                replica_bytes(&logc, &client, range, MemtableId(1)),
                expected,
                "group commit (bytes={bytes}, max_records={max_records}) must keep \
                 the serial byte layout"
            );
            for s in servers {
                s.stop();
            }
        }
    }

    #[test]
    fn concurrent_group_commit_loses_no_records_and_stays_parseable() {
        let (_f, servers, client) = cluster(3);
        let logc = Arc::new(
            LogC::new(
                client.clone(),
                LogPolicy::InMemoryReplicated { replicas: 3 },
                1 << 20,
            )
            .with_group_commit(4 << 10, 16),
        );
        let range = RangeId(2);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 200;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let logc = Arc::clone(&logc);
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        let record = LogRecord {
                            memtable_id: MemtableId(1),
                            key: format!("w{w}-k{i}").into_bytes(),
                            value: vec![b'g'; 32],
                            sequence: w * PER_WRITER + i + 1,
                            value_type: nova_common::ValueType::Value,
                        };
                        logc.append(range, &record).unwrap();
                    }
                });
            }
        });
        // Every acked record is present exactly once and the concatenated
        // region parses cleanly end to end.
        let bytes = replica_bytes(&logc, &client, range, MemtableId(1));
        let parsed = parse_records(&bytes).unwrap();
        assert_eq!(parsed.len() as u64, WRITERS * PER_WRITER);
        let mut sequences: Vec<u64> = parsed.iter().map(|r| r.sequence).collect();
        sequences.sort_unstable();
        sequences.dedup();
        assert_eq!(sequences.len() as u64, WRITERS * PER_WRITER);
        // All replicas agree byte for byte.
        let recovered = logc.recover_range(range, 4).unwrap();
        assert_eq!(recovered[&MemtableId(1)].len() as u64, WRITERS * PER_WRITER);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn append_batch_groups_per_memtable_and_recovers() {
        let (_f, servers, client) = cluster(2);
        let logc = LogC::new(client, LogPolicy::InMemoryReplicated { replicas: 2 }, 1 << 18);
        let range = RangeId(9);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        logc.create_log_file(range, MemtableId(2)).unwrap();
        let records: Vec<LogRecord> = (0..30u64)
            .map(|i| LogRecord::from_entry(MemtableId(1 + i % 2), &entry(i)))
            .collect();
        logc.append_batch(range, &records).unwrap();
        let recovered = logc.recover_range(range, 2).unwrap();
        assert_eq!(recovered[&MemtableId(1)].len(), 15);
        assert_eq!(recovered[&MemtableId(2)].len(), 15);
        // A batch naming an unknown memtable fails before logging anything.
        let bad = vec![LogRecord::from_entry(MemtableId(99), &entry(0))];
        assert!(matches!(
            logc.append_batch(range, &bad),
            Err(Error::InvalidArgument(_))
        ));
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn failed_group_write_surfaces_to_every_writer_and_acked_prefix_survives() {
        let (fabric, servers, client) = cluster(2);
        let logc = LogC::new(
            client.clone(),
            LogPolicy::InMemoryReplicated { replicas: 2 },
            1 << 18,
        );
        let range = RangeId(4);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        for i in 0..20u64 {
            logc.append(range, &LogRecord::from_entry(MemtableId(1), &entry(i)))
                .unwrap();
        }
        let acked_bytes = logc.log_bytes(range, MemtableId(1));
        // Fail one replica's node: the group write cannot complete, so the
        // writer must get an error (the record is unacknowledged).
        let victim = logc.open.lock()[&(range, MemtableId(1))].replicas[0].stoc;
        let victim_node = client.directory().node_of(victim).unwrap();
        fabric.fail_node(victim_node);
        assert!(logc
            .append(range, &LogRecord::from_entry(MemtableId(1), &entry(99)))
            .is_err());
        // The acked prefix is untouched and still recovers from the
        // surviving replica. The un-acked record may or may not be present
        // (its write can land on the healthy replica before the sibling
        // write fails) — the contract is acked-survives, un-acked-may-be-lost.
        assert_eq!(logc.log_bytes(range, MemtableId(1)), acked_bytes);
        let recovered = logc.recover_range(range, 2).unwrap();
        let records = &recovered[&MemtableId(1)];
        let sequences: std::collections::HashSet<u64> = records.iter().map(|r| r.sequence).collect();
        for seq in 1..=20u64 {
            assert!(sequences.contains(&seq), "acked record {seq} must survive");
        }
        assert!(
            sequences.iter().all(|s| *s <= 20 || *s == 100),
            "only acked records and the attempted suffix may appear: {sequences:?}"
        );
        fabric.recover_node(victim_node);
        // The log accepts appends again once the fault clears, reusing the
        // failed group's offset.
        logc.append(range, &LogRecord::from_entry(MemtableId(1), &entry(21)))
            .unwrap();
        assert_eq!(logc.recover_range(range, 2).unwrap()[&MemtableId(1)].len(), 21);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn shorter_group_after_a_failed_longer_one_leaves_no_parse_breaking_remnants() {
        // A failed group may have landed on a subset of the replicas. When a
        // *shorter* group then reuses the offset, the surviving replica must
        // not keep mid-record remnants of the longer failed group behind the
        // new records — recovery would parse them as corruption and refuse
        // the whole range. The failure path zero-fills the extent so the
        // remnants read as the clean end-of-log marker.
        let (fabric, servers, client) = cluster(2);
        let logc = LogC::new(
            client.clone(),
            LogPolicy::InMemoryReplicated { replicas: 2 },
            1 << 18,
        );
        let range = RangeId(6);
        logc.create_log_file(range, MemtableId(1)).unwrap();
        for i in 0..5u64 {
            logc.append(range, &LogRecord::from_entry(MemtableId(1), &entry(i)))
                .unwrap();
        }
        // Fail the SECOND replica and append a LONG record: the first
        // replica's write (job 0, issued ahead of the failing one) lands in
        // full before the group fails.
        let victim = logc.open.lock()[&(range, MemtableId(1))].replicas[1].stoc;
        let victim_node = client.directory().node_of(victim).unwrap();
        fabric.fail_node(victim_node);
        let long = LogRecord {
            memtable_id: MemtableId(1),
            key: b"long".to_vec(),
            value: vec![b'L'; 2_048],
            sequence: 50,
            value_type: nova_common::ValueType::Value,
        };
        assert!(logc.append(range, &long).is_err());
        fabric.recover_node(victim_node);
        // A SHORT record reuses the offset: it covers only a prefix of the
        // failed long record's extent on the healthy replica.
        logc.append(range, &LogRecord::from_entry(MemtableId(1), &entry(60)))
            .unwrap();
        // Every replica must parse cleanly end to end: the 5 acked records,
        // the short record, and no corruption from the long group's tail.
        for replica in &logc.open.lock()[&(range, MemtableId(1))].replicas.clone() {
            let bytes = client
                .read_mem(replica, 0, replica.size as usize)
                .unwrap()
                .to_vec();
            let parsed = parse_records(&bytes).expect("replica must stay parseable");
            let sequences: Vec<u64> = parsed.iter().map(|r| r.sequence).collect();
            assert_eq!(sequences, vec![1, 2, 3, 4, 5, 61]);
        }
        let recovered = logc.recover_range(range, 2).unwrap();
        assert_eq!(recovered[&MemtableId(1)].len(), 6);
        for s in servers {
            s.stop();
        }
    }
}
