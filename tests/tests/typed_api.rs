//! Tests for the typed operation API: `Result<Option<Bytes>>` gets,
//! scatter-gather `multi_get`, streaming `ScanCursor` range scans (including
//! under live migration), and the per-operation `ReadOptions` /
//! `WriteOptions` knobs.

use nova_common::keyspace::encode_key;
use nova_common::{ReadOptions, WriteOptions};
use nova_lsm::{presets, NovaClient, NovaCluster, ScanCursor};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn start_cluster(num_ltcs: usize, ranges_per_ltc: usize, num_keys: u64) -> (Arc<NovaCluster>, NovaClient) {
    let mut config = presets::test_cluster(num_ltcs, 2, num_keys);
    config.ranges_per_ltc = ranges_per_ltc;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());
    (cluster, client)
}

/// Drain a cursor into entries, panicking on any terminal error.
fn collect_cursor(cursor: ScanCursor) -> Vec<nova_common::types::Entry> {
    cursor
        .map(|e| e.expect("cursor must not surface terminal errors"))
        .collect()
}

#[test]
fn multi_get_matches_sequential_gets_with_duplicates_and_absent_keys() {
    let (cluster, client) = start_cluster(2, 2, 10_000);
    for i in (0..2_000u64).step_by(2) {
        client.put_numeric(i, format!("even-{i}").as_bytes()).unwrap();
    }
    // Duplicates, absent keys (odd and out-of-loaded-range), and present
    // keys interleaved, spanning all four ranges.
    let keys: Vec<u64> = vec![0, 1, 0, 4_999, 1_998, 7, 1_998, 9_999, 2, 500, 501, 0];
    let batched = client.multi_get_numeric(&keys).unwrap();
    assert_eq!(batched.len(), keys.len());
    for (slot, key) in batched.iter().zip(&keys) {
        let sequential = client.get_numeric(*key).unwrap();
        assert_eq!(
            slot, &sequential,
            "multi_get slot for key {key} disagrees with a sequential get"
        );
        assert_eq!(slot.is_some(), *key < 2_000 && key % 2 == 0);
    }
    // Empty batches are a no-op, not an error.
    assert!(client.multi_get_numeric(&[]).unwrap().is_empty());
    cluster.shutdown();
}

#[test]
fn multi_get_spanning_one_range_still_fans_out_and_preserves_order() {
    // A single-range cluster: the fan-out comes from chunking, not sharding.
    let (cluster, client) = start_cluster(1, 1, 5_000);
    for i in 0..1_000u64 {
        client.put_numeric(i, format!("v-{i}").as_bytes()).unwrap();
    }
    let keys: Vec<u64> = (0..600).rev().collect(); // descending: order must survive
    let values = client.multi_get_numeric(&keys).unwrap();
    for (slot, key) in values.iter().zip(&keys) {
        assert_eq!(
            slot.as_ref().map(|v| v.as_ref().to_vec()),
            Some(format!("v-{key}").into_bytes())
        );
    }
    cluster.shutdown();
}

#[test]
fn scan_shim_is_byte_identical_to_the_cursor_path() {
    let (cluster, client) = start_cluster(2, 2, 4_000);
    for i in 0..1_500u64 {
        client.put_numeric(i, format!("value-{i}").as_bytes()).unwrap();
    }
    for (start, limit) in [(0u64, 100usize), (990, 37), (1_400, 500), (3_999, 5)] {
        let shim = client.scan(&encode_key(start), limit).unwrap();
        let cursor: Vec<_> = collect_cursor(client.scan_range(
            &encode_key(start),
            None,
            ReadOptions::default().with_chunk(limit.max(1)),
        ))
        .into_iter()
        .take(limit)
        .collect();
        assert_eq!(shim.len(), cursor.len(), "scan({start}, {limit}) length diverged");
        for (a, b) in shim.iter().zip(&cursor) {
            assert_eq!(a.key, b.key, "scan({start}, {limit}) keys diverged");
            assert_eq!(a.value, b.value, "scan({start}, {limit}) values diverged");
        }
    }
    cluster.shutdown();
}

#[test]
fn bounded_cursor_respects_the_end_bound_across_ranges() {
    let (cluster, client) = start_cluster(2, 2, 4_000);
    for i in 0..4_000u64 {
        client.put_numeric(i, b"x").unwrap();
    }
    // [900, 2100) crosses the 1000 and 2000 range boundaries.
    let entries =
        collect_cursor(client.scan_range_numeric(900, 2_100, ReadOptions::default().with_chunk(64)));
    let keys: Vec<u64> = entries
        .iter()
        .map(|e| nova_common::keyspace::decode_key(&e.key).unwrap())
        .collect();
    assert_eq!(keys, (900..2_100).collect::<Vec<_>>());
    // An empty interval yields nothing.
    assert!(collect_cursor(client.scan_range_numeric(50, 50, ReadOptions::default())).is_empty());
    cluster.shutdown();
}

#[test]
fn scan_cursor_survives_concurrent_range_migration() {
    let (cluster, client) = start_cluster(2, 2, 4_000);
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for i in 0..4_000u64 {
        let value = format!("stable-{i}").into_bytes();
        client.put_numeric(i, &value).unwrap();
        model.insert(i, value);
    }

    // Iterate with a tiny chunk so many chunk boundaries interleave with
    // the migrations flipping every range back and forth between the LTCs
    // for the whole duration of the scan.
    let epoch_before = cluster.coordinator().configuration().epoch;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let entries = std::thread::scope(|scope| {
        let migrator = scope.spawn(|| {
            let ltcs = cluster.ltc_ids();
            let mut flips = 0u32;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) && flips < 10_000 {
                let assignment = cluster.coordinator().configuration();
                for range in assignment.range_assignment.keys().copied().collect::<Vec<_>>() {
                    let owner = assignment.ltc_of(range).unwrap();
                    let other = *ltcs.iter().find(|l| **l != owner).unwrap();
                    cluster.migrate_range(range, other).unwrap();
                    flips += 1;
                }
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        });
        let cursor = client.scan_range(&encode_key(0), None, ReadOptions::default().with_chunk(16));
        let mut out = Vec::new();
        for entry in cursor {
            out.push(entry.expect("the cursor must re-route around migrations, not fail"));
            // Give the migrator room to flip ownership mid-scan.
            if out.len() % 64 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        migrator.join().unwrap();
        out
    });

    assert_eq!(
        entries.len(),
        model.len(),
        "lost or duplicated entries under migration"
    );
    for (entry, (key, value)) in entries.iter().zip(&model) {
        assert_eq!(nova_common::keyspace::decode_key(&entry.key), Some(*key));
        assert_eq!(entry.value.as_ref(), value.as_slice(), "key {key} changed value");
    }
    assert!(
        cluster.coordinator().configuration().epoch > epoch_before,
        "ownership must actually have flipped while the cursor was live"
    );
    cluster.shutdown();
}

#[test]
fn read_options_no_fill_keeps_blocks_out_of_the_block_cache() {
    let (cluster, client) = start_cluster(1, 1, 4_000);
    for i in 0..2_000u64 {
        client.put_numeric(i, vec![b'v'; 128].as_slice()).unwrap();
    }
    cluster.flush_all().unwrap();
    let insertions =
        |cluster: &NovaCluster| -> u64 { cluster.block_cache_stats().values().map(|s| s.insertions).sum() };

    // A no-fill scan and no-fill gets leave the cache untouched.
    let baseline = insertions(&cluster);
    let entries = collect_cursor(client.scan_range_numeric(0, 2_000, ReadOptions::no_fill()));
    assert_eq!(entries.len(), 2_000);
    for i in (0..2_000u64).step_by(97) {
        assert!(client
            .get_with_options(&encode_key(i), &ReadOptions::no_fill())
            .unwrap()
            .is_some());
    }
    assert_eq!(
        insertions(&cluster),
        baseline,
        "fill_cache = false must not insert blocks"
    );

    // The default options do populate the cache on the same reads.
    let filled = collect_cursor(client.scan_range_numeric(0, 2_000, ReadOptions::default()));
    assert_eq!(filled.len(), 2_000);
    assert!(
        insertions(&cluster) > baseline,
        "default options must admit scanned blocks"
    );
    cluster.shutdown();
}

#[test]
fn write_options_no_group_commit_round_trips_through_the_log() {
    let mut config = presets::test_cluster(1, 2, 4_000);
    config.range.log_policy = nova_common::config::LogPolicy::InMemoryReplicated { replicas: 2 };
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..200u64)
        .map(|i| (encode_key(i), format!("ungrouped-{i}").into_bytes()))
        .collect();
    client
        .put_batch_with(&items, &WriteOptions::no_group_commit())
        .unwrap();
    for (key, value) in &items {
        assert_eq!(client.get(key).unwrap().expect("present").as_ref(), &value[..]);
    }
    // Borrowed pairs work without cloning into owned vectors.
    let borrowed: Vec<(&[u8], &[u8])> = items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
    client.put_batch(&borrowed).unwrap();
    cluster.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, max_shrink_iters: 0, ..ProptestConfig::default() })]
    #[test]
    fn scan_cursor_matches_the_eager_reference_scan(
        ops in proptest::collection::vec(
            (0..512u64, proptest::collection::vec(any::<u8>(), 1..24), any::<bool>()), 1..150),
        bounds in proptest::collection::vec((0..600u64, 0..600u64, 1usize..40), 1..6),
    ) {
        let mut config = presets::test_cluster(2, 2, 512);
        config.ranges_per_ltc = 2;
        // Tiny memtables so the sequence exercises flushed SSTables too.
        config.range.memtable_size_bytes = 4 * 1024;
        let cluster = NovaCluster::start(config).unwrap();
        let client = NovaClient::new(cluster.clone());
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (key, value, delete) in &ops {
            if *delete {
                client.delete(&encode_key(*key)).unwrap();
                model.remove(key);
            } else {
                client.put_numeric(*key, value).unwrap();
                model.insert(*key, value.clone());
            }
        }
        for (a, b, chunk) in &bounds {
            let (start, end) = (*a.min(b), *a.max(b));
            let got = collect_cursor(client.scan_range_numeric(
                start, end, ReadOptions::default().with_chunk(*chunk)));
            let expected: Vec<(u64, Vec<u8>)> = model
                .range(start..end)
                .map(|(k, v)| (*k, v.clone()))
                .collect();
            prop_assert_eq!(got.len(), expected.len(),
                "cursor over [{}, {}) chunk {} diverged in length", start, end, chunk);
            for (entry, (key, value)) in got.iter().zip(&expected) {
                prop_assert_eq!(nova_common::keyspace::decode_key(&entry.key), Some(*key));
                prop_assert_eq!(entry.value.as_ref(), value.as_slice());
            }
        }
        cluster.shutdown();
    }
}
