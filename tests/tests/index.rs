//! Consistency tests for the ordered secondary index subsystem: the index
//! must agree with a filter over the full base scan under arbitrary
//! put/update/delete interleavings (including across an LTC crash and
//! recovery), and index maintenance plus indexed lookups must survive
//! concurrent range migrations without a single terminal error.

use nova_common::keyspace::encode_key;
use nova_common::ReadOptions;
use nova_lsm::{presets, NovaClient, NovaCluster, ValueProjection};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Width of the secondary key: the first bytes of every value.
const SEC_WIDTH: usize = 2;
const INDEX: &str = "by_prefix";

/// A value whose first [`SEC_WIDTH`] bytes are the category code.
fn categorized(category: u8, suffix: &[u8]) -> Vec<u8> {
    let mut value = vec![b'c', b'0' + category];
    value.extend_from_slice(suffix);
    value
}

/// The reference the index must agree with: every `(secondary, primary)`
/// pair recoverable by scanning the base keyspace and projecting each
/// value, in index order.
fn scan_filter_reference(client: &NovaClient, num_keys: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rows: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    // The end bound keeps the scan on the base keyspace, off the 0xFE
    // index keyspace.
    for entry in client.scan_range(
        &encode_key(0),
        Some(&encode_key(num_keys)),
        ReadOptions::default().with_chunk(128),
    ) {
        let entry = entry.expect("base scan");
        rows.push((entry.value[..SEC_WIDTH].to_vec(), entry.key.to_vec()));
    }
    rows.sort();
    rows
}

/// Every `(secondary, primary)` posting the index holds, in index order.
fn index_contents(client: &NovaClient) -> Vec<(Vec<u8>, Vec<u8>)> {
    client
        .index_scan(INDEX, None, None, ReadOptions::default().with_chunk(64))
        .expect("index scan")
        .map(|e| {
            let e = e.expect("index cursor must not surface terminal errors");
            (e.secondary, e.primary)
        })
        .collect()
}

/// An operation in the randomly generated maintenance workload.
#[derive(Debug, Clone)]
enum Op {
    /// Put (insert or category-moving update) of a key.
    Put(u64, u8, Vec<u8>),
    /// Delete a key (present or absent).
    Delete(u64),
    /// Validated lookup of one category, checked against the model.
    Lookup(u8),
}

fn op_strategy(num_keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..num_keys, 0..4u8, proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, c, s)| Op::Put(k, c, s)),
        (0..num_keys, 0..4u8, proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, c, s)| Op::Put(k, c, s)),
        (0..num_keys).prop_map(Op::Delete),
        (0..4u8).prop_map(Op::Lookup),
    ]
}

fn check_lookup(client: &NovaClient, model: &BTreeMap<u64, Vec<u8>>, category: u8) {
    let secondary = vec![b'c', b'0' + category];
    let got: Vec<u64> = client
        .index_lookup_rows(INDEX, &secondary, usize::MAX)
        .expect("indexed lookup")
        .into_iter()
        .map(|(primary, value)| {
            assert!(
                value.starts_with(&secondary),
                "joined row from the wrong category"
            );
            nova_common::keyspace::decode_key(&primary).expect("primary decodes")
        })
        .collect();
    let expected: Vec<u64> = model
        .iter()
        .filter(|(_, v)| v.starts_with(&secondary))
        .map(|(k, _)| *k)
        .collect();
    assert_eq!(
        got, expected,
        "lookup({category}) disagrees with the model filter"
    );
}

/// Full parity: index contents == projecting a full base scan == the model.
fn check_full_parity(client: &NovaClient, model: &BTreeMap<u64, Vec<u8>>, num_keys: u64) {
    let reference = scan_filter_reference(client, num_keys);
    assert_eq!(
        index_contents(client),
        reference,
        "index and scan-filter reference diverged"
    );
    let from_model: Vec<(Vec<u8>, Vec<u8>)> = {
        let mut rows: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .map(|(k, v)| (v[..SEC_WIDTH].to_vec(), encode_key(*k)))
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(reference, from_model, "store and model diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, max_shrink_iters: 0, ..ProptestConfig::default() })]
    #[test]
    fn index_scan_matches_a_scan_filter_under_random_maintenance(
        ops in proptest::collection::vec(op_strategy(128), 1..120),
    ) {
        let num_keys = 128u64;
        let mut config = presets::test_cluster(2, 2, num_keys);
        // Tiny memtables so postings cross flushes, and a replicated log so
        // the crash below loses nothing acked.
        config.range.memtable_size_bytes = 4 * 1024;
        config.range.log_policy =
            nova_common::config::LogPolicy::InMemoryReplicated { replicas: 2 };
        let cluster = NovaCluster::start(config).unwrap();
        let client = NovaClient::new(cluster.clone());
        cluster
            .create_index(INDEX, ValueProjection::Slice { offset: 0, len: SEC_WIDTH })
            .unwrap();

        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, category, suffix) => {
                    let value = categorized(*category, suffix);
                    client.put_numeric(*k, &value).unwrap();
                    model.insert(*k, value);
                }
                Op::Delete(k) => {
                    client.delete(&encode_key(*k)).unwrap();
                    model.remove(k);
                }
                Op::Lookup(category) => check_lookup(&client, &model, *category),
            }
        }
        check_full_parity(&client, &model, num_keys);

        // Crash one LTC and recover it: the replayed log must restore the
        // index postings alongside the base records.
        let failed = cluster.ltc_ids()[1];
        cluster.fail_and_recover_ltc(failed).unwrap();
        check_full_parity(&client, &model, num_keys);
        for category in 0..4u8 {
            check_lookup(&client, &model, category);
        }
        cluster.shutdown();
    }
}

/// Index maintenance and indexed lookups while a migrator thread flips every
/// range between the two LTCs: zero terminal errors, and exact parity with
/// the model once the dust settles.
#[test]
fn index_maintenance_and_lookups_survive_concurrent_migration() {
    let num_keys = 2_000u64;
    let mut config = presets::test_cluster(2, 2, num_keys);
    config.ranges_per_ltc = 2;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());
    cluster
        .create_index(
            INDEX,
            ValueProjection::Slice {
                offset: 0,
                len: SEC_WIDTH,
            },
        )
        .unwrap();

    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for i in 0..1_000u64 {
        let value = categorized((i % 8) as u8, format!("seed-{i}").as_bytes());
        client.put_numeric(i, &value).unwrap();
        model.insert(i, value);
    }

    let epoch_before = cluster.coordinator().configuration().epoch;
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let migrator = scope.spawn(|| {
            let ltcs = cluster.ltc_ids();
            let mut flips = 0u32;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) && flips < 10_000 {
                let assignment = cluster.coordinator().configuration();
                for range in assignment.range_assignment.keys().copied().collect::<Vec<_>>() {
                    let owner = assignment.ltc_of(range).unwrap();
                    let other = *ltcs.iter().find(|l| **l != owner).unwrap();
                    cluster.migrate_range(range, other).unwrap();
                    flips += 1;
                }
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        });

        // The sole writer: category-moving updates, deletes, inserts, and
        // validated lookups — every call must re-route around the
        // migrations rather than fail.
        let mut state = 7u64;
        for i in 0..1_200u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = state % num_keys;
            match i % 4 {
                0 | 1 => {
                    let value = categorized(((state >> 32) % 8) as u8, format!("live-{i}").as_bytes());
                    client.put_numeric(key, &value).unwrap();
                    model.insert(key, value);
                }
                2 => {
                    client.delete(&encode_key(key)).unwrap();
                    model.remove(&key);
                }
                _ => check_lookup(&client, &model, (state % 8) as u8),
            }
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        migrator.join().unwrap();
    });

    assert!(
        cluster.coordinator().configuration().epoch > epoch_before,
        "ownership must actually have flipped during the run"
    );
    check_full_parity(&client, &model, num_keys);
    for category in 0..8u8 {
        check_lookup(&client, &model, category);
    }
    cluster.shutdown();
}
