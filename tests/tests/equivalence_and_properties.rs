//! Property-style integration tests: Nova-LSM must agree with a simple
//! in-memory model database under arbitrary operation sequences, and with the
//! monolithic baseline built on the same substrate.

use nova_common::keyspace::encode_key;
use nova_lsm::baseline::{BaselineCluster, BaselineKind};
use nova_lsm::{presets, NovaClient, NovaCluster};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// An operation in the randomly generated workload.
#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
    Get(u64),
    Scan(u64, usize),
}

fn op_strategy(num_keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..num_keys, proptest::collection::vec(any::<u8>(), 1..32)).prop_map(|(k, v)| Op::Put(k, v)),
        (0..num_keys).prop_map(Op::Delete),
        (0..num_keys).prop_map(Op::Get),
        (0..num_keys, 1usize..8).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

fn apply_to_model(model: &mut BTreeMap<u64, Vec<u8>>, op: &Op) {
    match op {
        Op::Put(k, v) => {
            model.insert(*k, v.clone());
        }
        Op::Delete(k) => {
            model.remove(k);
        }
        _ => {}
    }
}

fn check_against_model(client: &NovaClient, model: &BTreeMap<u64, Vec<u8>>, op: &Op) {
    match op {
        Op::Get(k) => {
            let expected = model.get(k);
            match client.get_numeric(*k) {
                Ok(found) => assert_eq!(
                    found.as_ref().map(|v| v.as_ref()),
                    expected.map(|e| e.as_slice()),
                    "get({k}) mismatch"
                ),
                Err(e) => panic!("get({k}) failed: {e}"),
            }
        }
        Op::Scan(k, n) => {
            let got = client.scan(&encode_key(*k), *n).unwrap();
            let expected: Vec<(u64, Vec<u8>)> =
                model.range(*k..).take(*n).map(|(k, v)| (*k, v.clone())).collect();
            assert_eq!(got.len(), expected.len(), "scan({k}, {n}) length mismatch");
            for (entry, (ek, ev)) in got.iter().zip(expected.iter()) {
                assert_eq!(nova_common::keyspace::decode_key(&entry.key), Some(*ek));
                assert_eq!(entry.value.as_ref(), ev.as_slice());
            }
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, max_shrink_iters: 0, ..ProptestConfig::default() })]
    #[test]
    fn nova_lsm_matches_a_model_database(ops in proptest::collection::vec(op_strategy(256), 1..200)) {
        let mut config = presets::test_cluster(1, 2, 256);
        // Tiny memtables so the sequence exercises flushes too.
        config.range.memtable_size_bytes = 4 * 1024;
        let cluster = NovaCluster::start(config).unwrap();
        let client = NovaClient::new(cluster.clone());
        let mut model = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => client.put_numeric(*k, v).unwrap(),
                Op::Delete(k) => client.delete(&encode_key(*k)).unwrap(),
                _ => check_against_model(&client, &model, op),
            }
            apply_to_model(&mut model, op);
        }
        // Final full check of every key the model knows about.
        for (k, v) in &model {
            let got = client.get_numeric(*k).unwrap().expect("key present in model");
            prop_assert_eq!(got.as_ref(), v.as_slice());
        }
        cluster.shutdown();
    }
}

#[test]
fn nova_and_baseline_agree_on_results() {
    // Same workload against Nova-LSM and the LevelDB-like baseline: the
    // architectures differ but the answers must not.
    let num_keys = 2_000u64;
    let nova_config = presets::test_cluster(1, 2, num_keys);
    let nova = NovaCluster::start(nova_config).unwrap();
    let nova_client = NovaClient::new(nova.clone());
    let baseline = BaselineCluster::start(
        BaselineKind::LevelDb,
        2,
        num_keys,
        16 * 1024,
        nova_common::config::DiskConfig {
            bandwidth_bytes_per_sec: u64::MAX / 2,
            seek_micros: 0,
            accounting_only: true,
        },
    )
    .unwrap();

    let mut state = 99u64;
    for i in 0..4_000u64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = state % num_keys;
        let value = format!("v-{i}");
        nova_client.put_numeric(key, value.as_bytes()).unwrap();
        baseline.put(&encode_key(key), value.as_bytes()).unwrap();
        if i % 10 == 0 {
            let a = nova_client.get_numeric(key).unwrap().expect("just written");
            let b = baseline.get(&encode_key(key)).unwrap();
            assert_eq!(a, b, "nova and baseline disagree on key {key}");
        }
    }
    // Scans agree as well.
    let a = nova_client.scan(&encode_key(100), 20).unwrap();
    let b = baseline.scan(&encode_key(100), 20).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.value, y.value);
    }
    nova.shutdown();
    baseline.shutdown();
}

#[test]
fn stoc_failure_with_hybrid_availability_preserves_reads() {
    let mut config = presets::test_cluster(1, 4, 3_000);
    config.range.scatter_width = 3;
    config.range.availability = nova_common::config::AvailabilityPolicy::Hybrid;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());
    for i in 0..1_500u64 {
        client.put_numeric(i, vec![b'x'; 64].as_slice()).unwrap();
    }
    cluster.flush_all().unwrap();

    // Fail one StoC node.
    let victim = cluster.stoc_ids()[1];
    let stats_before = cluster.stoc_stats();
    assert!(stats_before[&victim].bytes_written > 0 || stats_before.values().any(|s| s.bytes_written > 0));
    let victim_node = nova_common::NodeId((cluster.config().num_ltcs + victim.0 as usize) as u32);
    cluster.fabric().fail_node(victim_node);

    let mut ok = 0;
    let mut total = 0;
    for i in (0..1_500u64).step_by(31) {
        total += 1;
        if matches!(client.get_numeric(i), Ok(Some(_))) {
            ok += 1;
        }
    }
    assert!(
        ok * 10 >= total * 9,
        "with hybrid availability at least 90% of keys must survive a StoC failure ({ok}/{total})"
    );
    cluster.fabric().recover_node(victim_node);
    cluster.shutdown();
}
