//! Elasticity under load (Section 9): the epoch-guarded two-phase migration
//! protocol, its abort path, manifest-home pinning, drained-StoC leases and
//! delta-based rebalancing.

use nova_common::keyspace::encode_key;
use nova_common::{Error, LtcId, RangeId, StocId};
use nova_lsm::coordinator::LeaseHolder;
use nova_lsm::{presets, NovaClient, NovaCluster};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// The tentpole scenario: writer threads keep hammering the migrating range
/// while it changes hands. Every acknowledged write must survive, and no
/// thread may observe a terminal error — only bounded, client-internal
/// retries.
#[test]
fn migration_under_concurrent_writers_loses_no_acknowledged_writes() {
    let mut config = presets::test_cluster(2, 2, 4_000);
    config.ranges_per_ltc = 2;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    let ltcs = cluster.ltc_ids();
    let source = ltcs[0];
    let destination = ltcs[1];
    let range = cluster.coordinator().configuration().ranges_of(source)[0];
    // Keys of the migrating range (ranges are 1 000 keys wide).
    let base = range.0 as u64 * 1_000;

    let stop = AtomicBool::new(false);
    let terminal_errors = AtomicU64::new(0);
    const WRITERS: u64 = 4;
    const KEYS_PER_WRITER: u64 = 250;

    // Each writer owns a disjoint key slice and returns, per key, the last
    // value the cluster acknowledged.
    let acked: Vec<Vec<(u64, String)>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let client = client.clone();
            let stop = &stop;
            let terminal_errors = &terminal_errors;
            handles.push(scope.spawn(move || {
                let lo = base + w * KEYS_PER_WRITER;
                let mut last: Vec<(u64, String)> = Vec::new();
                let mut iter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for key in lo..lo + KEYS_PER_WRITER {
                        let value = format!("w{w}-i{iter}-k{key}");
                        match client.put_numeric(key, value.as_bytes()) {
                            Ok(()) => match last.iter_mut().find(|(k, _)| *k == key) {
                                Some(slot) => slot.1 = value,
                                None => last.push((key, value)),
                            },
                            Err(_) => {
                                terminal_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    iter += 1;
                }
                last
            }));
        }

        // Let the writers ramp up, migrate under them, then let them observe
        // the new owner for a little while.
        std::thread::sleep(Duration::from_millis(30));
        cluster.migrate_range(range, destination).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::SeqCst);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        terminal_errors.load(Ordering::SeqCst),
        0,
        "migration under load must surface only bounded retries, never errors"
    );
    assert_eq!(
        cluster.coordinator().configuration().ltc_of(range),
        Some(destination)
    );
    // Zero lost acknowledged writes: every key reads back the last value the
    // writer got an Ok for.
    for per_writer in &acked {
        assert!(!per_writer.is_empty(), "every writer must make progress");
        for (key, value) in per_writer {
            assert_eq!(
                client.get_numeric(*key).unwrap().expect("present").as_ref(),
                value.as_bytes(),
                "key {key} lost its last acknowledged write across the migration"
            );
        }
    }
    cluster.shutdown();
}

/// Abort path: an injected fault while the destination engine is being built
/// must unfreeze the source (reads *and* writes keep working) and leave the
/// coordinator configuration untouched.
#[test]
fn injected_import_failure_aborts_and_unfreezes_the_source() {
    let mut config = presets::test_cluster(2, 2, 4_000);
    config.ranges_per_ltc = 1;
    // Replicate every fragment onto both StoCs: the pre-fault keys this test
    // reads back may have been flushed into SSTables, and at a single copy
    // the flush can legitimately land on the StoC whose node the test is
    // about to fail — which made the readability assertions flaky. With a
    // surviving replica, every flushed fragment stays readable throughout.
    config.range.availability = nova_common::config::AvailabilityPolicy::Replicate(2);
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    for i in 0..200u64 {
        client.put_numeric(i, b"pre-fault").unwrap();
    }
    let ltcs = cluster.ltc_ids();
    let range = cluster.coordinator().configuration().ranges_of(ltcs[0])[0];
    let destination = ltcs[1];

    // Fail the node hosting the range's pinned manifest-home StoC: the
    // destination build cannot persist its MANIFEST and the migration must
    // abort.
    let manifest_home = cluster
        .coordinator()
        .configuration()
        .manifest_home(range)
        .expect("every range has a pinned manifest home");
    let victim_node = cluster.stoc_node(manifest_home).unwrap();
    let config_before = cluster.coordinator().configuration();
    cluster.fabric().fail_node(victim_node);

    let err = cluster.migrate_range(range, destination).unwrap_err();
    assert!(
        !matches!(err, Error::StaleConfig { .. }),
        "the abort must surface the real fault, got {err}"
    );

    // The configuration is untouched: same owner, same epoch.
    let config_after = cluster.coordinator().configuration();
    assert_eq!(config_after.epoch, config_before.epoch);
    assert_eq!(config_after.ltc_of(range), config_before.ltc_of(range));

    // The source is unfrozen: it serves writes (still with the StoC node
    // down — writes land in memtables) as well as reads. Reads are asserted
    // on in-memory data; pre-fault keys may have been flushed onto the
    // failed StoC itself (ρ=1, no replication) and are checked after it
    // recovers.
    client.put_numeric(7, b"post-abort").unwrap();
    assert_eq!(
        client.get_numeric(7).unwrap().expect("present").as_ref(),
        b"post-abort"
    );

    // Once the fault clears, the same migration succeeds and nothing was
    // lost.
    cluster.fabric().recover_node(victim_node);
    assert_eq!(
        client.get_numeric(100).unwrap().expect("present").as_ref(),
        b"pre-fault"
    );
    cluster.migrate_range(range, destination).unwrap();
    assert_eq!(
        cluster.coordinator().configuration().ltc_of(range),
        Some(destination)
    );
    assert_eq!(
        client.get_numeric(7).unwrap().expect("present").as_ref(),
        b"post-abort"
    );
    assert_eq!(
        client.get_numeric(100).unwrap().expect("present").as_ref(),
        b"pre-fault"
    );
    client.put_numeric(8, b"post-retry").unwrap();
    assert_eq!(
        client.get_numeric(8).unwrap().expect("present").as_ref(),
        b"post-retry"
    );
    cluster.shutdown();
}

/// The epoch contract: operations carrying a configuration epoch older than
/// the epoch at which the serving LTC acquired the range are rejected with
/// the retriable `StaleConfig`, and refreshing the configuration converges.
#[test]
fn epoch_mismatch_is_rejected_and_a_refresh_converges() {
    let mut config = presets::test_cluster(2, 2, 4_000);
    config.ranges_per_ltc = 1;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());
    let key = encode_key(10);

    // A current route succeeds; a prehistoric epoch is rejected.
    let (range, ltc, epoch) = cluster.route(&key).unwrap();
    ltc.put_at(range, &key, b"current", epoch).unwrap();
    assert!(matches!(
        ltc.put_at(range, &key, b"stale", 0),
        Err(Error::StaleConfig { epoch: e }) if e > 0
    ));
    assert!(matches!(
        ltc.get_at(range, &key, 0),
        Err(Error::StaleConfig { .. })
    ));

    // Migrate the range; the old routing epoch is now stale everywhere.
    let destination = cluster.ltc_ids().into_iter().find(|l| *l != ltc.id()).unwrap();
    cluster.migrate_range(range, destination).unwrap();
    let commit_epoch = cluster.coordinator().epoch();
    assert!(commit_epoch > epoch);

    // Old owner: the engine is gone entirely.
    assert!(matches!(
        ltc.put_at(range, &key, b"stale", epoch),
        Err(Error::WrongRange(_))
    ));
    // New owner rejects the pre-migration epoch and names the epoch to
    // refresh to.
    let new_owner = cluster.ltc(destination).unwrap();
    match new_owner.put_at(range, &key, b"stale", epoch) {
        Err(Error::StaleConfig { epoch: e }) => assert_eq!(e, commit_epoch),
        other => panic!("expected StaleConfig, got {other:?}"),
    }
    // The refresh round-trip: re-route, retry, succeed.
    let (range2, ltc2, epoch2) = cluster.route(&key).unwrap();
    assert_eq!(range2, range);
    assert_eq!(ltc2.id(), destination);
    ltc2.put_at(range2, &key, b"refreshed", epoch2).unwrap();
    assert_eq!(
        client.get(&key).unwrap().expect("present").as_ref(),
        b"refreshed",
        "the high-level client refreshes transparently"
    );
    cluster.shutdown();
}

/// Manifest-home pinning: adding a StoC between range creation and an LTC
/// failover must not move where recovery looks for the MANIFEST.
#[test]
fn manifest_home_survives_add_stoc_before_failover() {
    let mut config = presets::test_cluster(2, 3, 4_000);
    config.ranges_per_ltc = 2;
    config.range.log_policy = nova_common::config::LogPolicy::InMemoryReplicated { replicas: 3 };
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    for i in 0..4_000u64 {
        client.put_numeric(i, format!("pinned-{i}").as_bytes()).unwrap();
    }
    // Persist MANIFESTs (flushes write SSTables and save manifest
    // snapshots to each range's pinned home).
    cluster.flush_all().unwrap();

    // Growing the StoC set used to shift `range.0 % directory.len()` — e.g.
    // range 3 resolved to StoC 0 with three StoCs but StoC 3 with four —
    // so recovery read an empty MANIFEST and silently dropped all flushed
    // data. The pin must make this a no-op.
    let pinned_before: Vec<Option<StocId>> = (0..4u32)
        .map(|r| cluster.coordinator().configuration().manifest_home(RangeId(r)))
        .collect();
    cluster.add_stoc().unwrap();
    let pinned_after: Vec<Option<StocId>> = (0..4u32)
        .map(|r| cluster.coordinator().configuration().manifest_home(RangeId(r)))
        .collect();
    assert_eq!(pinned_before, pinned_after);

    let failed = cluster.ltc_ids()[1];
    let recovered = cluster.fail_and_recover_ltc(failed).unwrap();
    assert_eq!(recovered, 2);
    let mut missing = Vec::new();
    for i in (0..4_000u64).step_by(17) {
        match client.get_numeric(i) {
            Ok(Some(v)) => assert_eq!(v.as_ref(), format!("pinned-{i}").as_bytes()),
            Ok(None) => missing.push((i, "absent".to_string())),
            Err(e) => missing.push((i, format!("{e:?}"))),
        }
    }
    assert!(missing.is_empty(), "lost keys after recovery: {missing:?}");
    cluster.shutdown();
}

/// Draining StoCs (removed from placement but still serving reads) must keep
/// their leases renewed by `heartbeat_all`.
#[test]
fn heartbeat_all_covers_draining_stocs() {
    let mut config = presets::test_cluster(1, 3, 2_000);
    config.range.scatter_width = 1;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());
    for i in 0..500u64 {
        client.put_numeric(i, b"v").unwrap();
    }
    let victim = *cluster.stoc_ids().last().unwrap();
    cluster.remove_stoc(victim).unwrap();
    assert!(!cluster.stoc_ids().contains(&victim), "removed from placement");
    assert!(
        !cluster.coordinator().lease_valid(LeaseHolder::Stoc(victim.0)),
        "deregistration revokes the lease"
    );
    // The drained StoC still serves its blocks, so the cluster heartbeat
    // must renew its lease along with every other registered component.
    cluster.heartbeat_all();
    assert!(
        cluster.coordinator().lease_valid(LeaseHolder::Stoc(victim.0)),
        "heartbeat_all must cover still-registered draining StoCs"
    );
    assert!(cluster.coordinator().expired_components().is_empty());
    cluster.shutdown();
}

/// Rebalancing must plan from the load observed since the previous
/// rebalance: when the hotspot shifts between two rebalances, the second one
/// sheds ranges from the *newly* hot LTC instead of replaying history.
#[test]
fn second_rebalance_reacts_to_shifted_load() {
    let mut config = presets::test_cluster(2, 2, 4_000);
    config.ranges_per_ltc = 4; // 8 ranges, 500 keys each
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());
    for i in 0..4_000u64 {
        client.put_numeric(i, b"v").unwrap();
    }
    let ltc_a = LtcId(0);
    let ranges_of = |ltc: LtcId| cluster.coordinator().configuration().ranges_of(ltc).len();

    // Phase 1: hammer LTC A's half of the keyspace, then rebalance.
    for _ in 0..3 {
        for i in 0..2_000u64 {
            client.get_numeric(i).unwrap();
        }
    }
    let first = cluster.rebalance().unwrap();
    assert!(first >= 1, "the hot LTC must shed ranges on the first rebalance");
    assert!(ranges_of(ltc_a) < 4, "LTC A was the donor");

    // Phase 2: the hotspot shifts to LTC B's original half. A second
    // rebalance must react to this *new* load even though LTC A's lifetime
    // counters still dominate.
    for _ in 0..2 {
        for i in 2_000..4_000u64 {
            client.get_numeric(i).unwrap();
        }
    }
    let a_before = ranges_of(ltc_a);
    let second = cluster.rebalance().unwrap();
    assert!(second >= 1, "the shifted hotspot must trigger migrations");
    assert!(
        ranges_of(ltc_a) > a_before,
        "the second rebalance must shed from the newly hot LTC B toward LTC A"
    );
    cluster.shutdown();
}
