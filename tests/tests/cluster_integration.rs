//! End-to-end integration tests spanning every crate: a full Nova-LSM cluster
//! (fabric + StoCs + LTCs + coordinator) driven through the public client
//! API.

use nova_common::keyspace::encode_key;

use nova_lsm::{presets, NovaClient, NovaCluster};

#[test]
fn put_get_scan_across_multiple_ltcs_and_stocs() {
    let mut config = presets::test_cluster(2, 3, 10_000);
    config.ranges_per_ltc = 2;
    config.range.scatter_width = 2;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    for i in 0..3_000u64 {
        client.put_numeric(i, format!("value-{i}").as_bytes()).unwrap();
    }
    // Reads hit every LTC (keys span all 4 ranges).
    for i in (0..3_000u64).step_by(97) {
        assert_eq!(
            client.get_numeric(i).unwrap().expect("present").as_ref(),
            format!("value-{i}").as_bytes()
        );
    }
    assert_eq!(client.get_numeric(9_999).unwrap(), None);

    // A scan crossing a range boundary (ranges are 2 500 keys wide, so this
    // one starts in range 0 and finishes in range 1).
    let result = client.scan(&encode_key(2_495), 10).unwrap();
    assert_eq!(result.len(), 10);
    let keys: Vec<u64> = result
        .iter()
        .map(|e| nova_common::keyspace::decode_key(&e.key).unwrap())
        .collect();
    assert_eq!(keys, (2_495..2_505).collect::<Vec<_>>());

    // Deletes are visible cluster-wide.
    client.delete(&encode_key(100)).unwrap();
    assert_eq!(client.get_numeric(100).unwrap(), None);

    // Write into the second LTC's half of the keyspace so both did work.
    for i in 6_000..6_200u64 {
        client.put_numeric(i, b"second-ltc").unwrap();
    }
    assert_eq!(
        client.get_numeric(6_100).unwrap().expect("present").as_ref(),
        b"second-ltc"
    );
    let stats = cluster.ltc_stats();
    assert_eq!(stats.len(), 2);
    assert!(stats.values().all(|s| s.writes > 0));
    cluster.shutdown();
}

#[test]
fn data_survives_flushes_and_compactions_under_load() {
    let mut config = presets::test_cluster(1, 3, 5_000);
    config.range.scatter_width = 2;
    config.range.level0_stall_bytes = 128 * 1024;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    // Several overwrite rounds force flushes and at least one compaction.
    for round in 0..4u64 {
        for i in 0..2_000u64 {
            client
                .put_numeric(i, format!("round-{round}-{i}").as_bytes())
                .unwrap();
        }
    }
    cluster.flush_all().unwrap();
    for i in (0..2_000u64).step_by(41) {
        assert_eq!(
            client.get_numeric(i).unwrap().expect("present").as_ref(),
            format!("round-3-{i}").as_bytes(),
            "key {i} must return its latest version"
        );
    }
    // SSTables were written to more than one StoC (shared-disk behaviour).
    let stoc_stats = cluster.stoc_stats();
    let busy = stoc_stats.values().filter(|s| s.bytes_written > 0).count();
    assert!(
        busy >= 2,
        "scatter_width=2 must spread bytes across StoCs, only {busy} were written"
    );
    cluster.shutdown();
}

#[test]
fn ltc_failure_recovers_ranges_on_survivors_with_logging() {
    let mut config = presets::test_cluster(2, 3, 4_000);
    config.ranges_per_ltc = 2;
    config.range.log_policy = nova_common::config::LogPolicy::InMemoryReplicated { replicas: 3 };
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    for i in 0..1_000u64 {
        client.put_numeric(i, format!("durable-{i}").as_bytes()).unwrap();
    }
    let failed = cluster.ltc_ids()[0];
    let recovered = cluster.fail_and_recover_ltc(failed).unwrap();
    assert_eq!(recovered, 2, "both of the failed LTC's ranges must be recovered");
    assert_eq!(cluster.ltc_ids().len(), 1);

    // Every key is still readable: flushed data comes from SSTables, buffered
    // data is replayed from the replicated log records.
    for i in (0..1_000u64).step_by(23) {
        assert_eq!(
            client.get_numeric(i).unwrap().expect("present").as_ref(),
            format!("durable-{i}").as_bytes(),
            "key {i} lost after LTC failure"
        );
    }
    cluster.shutdown();
}

#[test]
fn range_migration_moves_load_without_losing_data() {
    let mut config = presets::test_cluster(2, 2, 4_000);
    config.ranges_per_ltc = 2;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    for i in 0..1_000u64 {
        client.put_numeric(i, b"before-migration").unwrap();
    }
    let ltcs = cluster.ltc_ids();
    let source = ltcs[0];
    let destination = ltcs[1];
    let range = cluster.coordinator().configuration().ranges_of(source)[0];

    cluster.migrate_range(range, destination).unwrap();
    let config_after = cluster.coordinator().configuration();
    assert_eq!(config_after.ltc_of(range), Some(destination));

    // All keys (including those of the migrated range) remain readable and
    // writable through the client, which re-routes transparently.
    for i in (0..1_000u64).step_by(13) {
        assert_eq!(
            client.get_numeric(i).unwrap().expect("present").as_ref(),
            b"before-migration"
        );
    }
    client.put_numeric(5, b"after-migration").unwrap();
    assert_eq!(
        client.get_numeric(5).unwrap().expect("present").as_ref(),
        b"after-migration"
    );
    cluster.shutdown();
}

#[test]
fn elastic_scale_out_and_in_of_stocs_and_ltcs() {
    let mut config = presets::test_cluster(1, 2, 4_000);
    config.range.scatter_width = 1;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    for i in 0..500u64 {
        client.put_numeric(i, b"v").unwrap();
    }
    // Scale out: a new StoC joins and is used for new SSTables immediately.
    let new_stoc = cluster.add_stoc().unwrap();
    assert!(cluster.stoc_ids().contains(&new_stoc));
    // Scale out LTCs and rebalance ranges onto the new one.
    let new_ltc = cluster.add_ltc().unwrap();
    assert!(cluster.ltc_ids().contains(&new_ltc));
    let range = cluster
        .coordinator()
        .configuration()
        .range_assignment
        .keys()
        .copied()
        .next()
        .unwrap();
    cluster.migrate_range(range, new_ltc).unwrap();
    assert_eq!(cluster.coordinator().configuration().ltc_of(range), Some(new_ltc));
    for i in (0..500u64).step_by(7) {
        assert_eq!(client.get_numeric(i).unwrap().expect("present").as_ref(), b"v");
    }
    // Scale the StoC back in.
    cluster.remove_stoc(new_stoc).unwrap();
    assert!(!cluster.stoc_ids().contains(&new_stoc));
    // Removing the last remaining StoCs is refused.
    let remaining = cluster.stoc_ids();
    for s in &remaining[..remaining.len() - 1] {
        cluster.remove_stoc(*s).unwrap();
    }
    assert!(cluster.remove_stoc(remaining[remaining.len() - 1]).is_err());
    cluster.shutdown();
}

#[test]
fn heartbeats_keep_leases_alive() {
    let config = presets::test_cluster(1, 1, 1_000);
    let cluster = NovaCluster::start(config).unwrap();
    cluster.heartbeat_all();
    assert!(cluster.coordinator().expired_components().is_empty());
    cluster.shutdown();
}
