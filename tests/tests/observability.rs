//! End-to-end observability: the client operations land in the op and layer
//! histograms, the health report aggregates every component, the slow-op
//! ring attributes latency to layers, and the disabled configuration records
//! nothing.

use nova_lsm::obs::{Layer, OpKind};
use nova_lsm::{presets, NovaClient, NovaCluster};

fn start(metrics_enabled: bool) -> (std::sync::Arc<NovaCluster>, NovaClient) {
    let mut config = presets::test_cluster(1, 2, 2_000);
    config.range.scatter_width = 1;
    if !metrics_enabled {
        config.metrics = nova_common::config::MetricsConfig::disabled();
    }
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(cluster.clone());
    (cluster, client)
}

#[test]
fn client_operations_reach_the_op_and_layer_histograms() {
    let (cluster, client) = start(true);
    for i in 0..200u64 {
        client.put_numeric(i, b"value").expect("put");
    }
    for i in 0..100u64 {
        client.get_numeric(i).expect("get");
    }
    client
        .delete(&nova_common::keyspace::encode_key(5))
        .expect("delete");
    let scanned = client
        .scan(&nova_common::keyspace::encode_key(0), 20)
        .expect("scan");
    assert!(scanned.len() >= 19, "scan sees the loaded keys minus the delete");
    client.multi_get_numeric(&[1, 2, 3]).expect("multi_get");
    client
        .put_batch(&[(nova_common::keyspace::encode_key(1), b"v2".to_vec())])
        .expect("put_batch");

    let metrics = cluster.metrics();
    assert_eq!(metrics.op_snapshot(OpKind::Put).count(), 200);
    assert_eq!(metrics.op_snapshot(OpKind::Get).count(), 100);
    assert_eq!(metrics.op_snapshot(OpKind::Delete).count(), 1);
    assert!(metrics.op_snapshot(OpKind::Scan).count() >= 1);
    assert_eq!(metrics.op_snapshot(OpKind::MultiGet).count(), 1);
    assert_eq!(metrics.op_snapshot(OpKind::PutBatch).count(), 1);

    // Every op passed through the LTC layer; the percentile chain is sane.
    let ltc = metrics.layer_snapshot(Layer::Ltc);
    assert!(ltc.count() >= 303);
    let puts = metrics.op_snapshot(OpKind::Put);
    assert!(puts.p50() <= puts.p99() && puts.p99() <= puts.max());
    assert!(puts.min() <= puts.p50());

    // The merged view counts every op exactly once.
    assert_eq!(metrics.all_ops_snapshot().count(), 200 + 100 + 1 + 1 + 1 + 1);
    cluster.shutdown();
}

#[test]
fn health_report_aggregates_every_component() {
    let (cluster, client) = start(true);
    for i in 0..500u64 {
        client.put_numeric(i, &[b'x'; 128]).expect("put");
    }
    for i in 0..200u64 {
        client.get_numeric(i % 500).expect("get");
    }
    cluster.flush_all().expect("flush");
    cluster.heartbeat_all();

    let health = cluster.health_report();
    assert_eq!(health.ltcs.len(), 1);
    assert_eq!(health.stocs.len(), 2);
    assert_eq!(health.draining_stocs(), 0);
    assert!(health.total_ops() >= 700);
    assert!(health.ltcs[0].lease_valid);
    assert!(health
        .stocs
        .iter()
        .all(|s| s.alive && s.placeable && s.lease_valid));
    // The flush moved bytes to at least one StoC.
    assert!(health
        .stocs
        .iter()
        .any(|s| s.bytes_written > 0 && s.num_files > 0));
    // Op percentile rows exist for the kinds that ran.
    let ops: Vec<&str> = health.op_latencies.iter().map(|o| o.op.as_str()).collect();
    assert!(ops.contains(&"put") && ops.contains(&"get"));
    // Group commit cut at least one group (logging is on in the preset)
    // unless the preset disables logging — then the histogram is empty.
    let summary = health.summary();
    assert!(summary.contains("cluster health @ epoch"));
    assert!(summary.contains("op put"));
    let json = health.to_json();
    assert!(json.contains("\"num_ltcs\":1"));
    assert!(json.contains("\"ops\":["));

    // The registry snapshot publishes the per-component gauges.
    let snapshot = cluster.metrics_snapshot();
    assert!(snapshot.gauges.contains_key("ltc.0.ops"));
    assert!(snapshot.gauges.contains_key("stoc.0.num_files"));
    assert!(snapshot.histograms.contains_key("op.put.micros"));
    assert!(snapshot.to_json().contains("\"gauges\""));
    cluster.shutdown();
}

#[test]
fn draining_and_failed_stocs_show_in_the_health_report() {
    let (cluster, client) = start(true);
    for i in 0..100u64 {
        client.put_numeric(i, b"value").expect("put");
    }
    cluster.flush_all().expect("flush");

    // Drain StoC 1: removed from placement, still serving its blocks.
    cluster.remove_stoc(nova_common::StocId(1)).expect("remove stoc");
    let health = cluster.health_report();
    assert_eq!(health.placeable_stocs(), 1);
    assert_eq!(health.draining_stocs(), 1);
    let drained = health
        .stocs
        .iter()
        .find(|s| s.id == nova_common::StocId(1))
        .expect("draining StoC still reported");
    assert!(!drained.placeable && drained.alive);

    // Fail StoC 0's node: the report shows it down.
    let node = cluster.stoc_node(nova_common::StocId(0)).expect("node");
    cluster.fabric().fail_node(node);
    let health = cluster.health_report();
    let failed = health
        .stocs
        .iter()
        .find(|s| s.id == nova_common::StocId(0))
        .expect("failed StoC still reported");
    assert!(!failed.alive);
    cluster.fabric().recover_node(node);
    cluster.shutdown();
}

#[test]
fn slow_operations_are_captured_with_layer_breakdown() {
    let mut config = presets::test_cluster(1, 1, 1_000);
    // Threshold 0: every operation is "slow", so the ring must fill.
    config.metrics.slow_op_threshold_micros = 0;
    config.metrics.slow_op_capacity = 8;
    let cluster = NovaCluster::start(config).expect("start cluster");
    let client = NovaClient::new(cluster.clone());
    for i in 0..20u64 {
        client.put_numeric(i, b"value").expect("put");
    }
    let metrics = cluster.metrics();
    assert_eq!(metrics.slow_op_count(), 20);
    let recent = metrics.slow_ops();
    assert_eq!(recent.len(), 8, "ring keeps the most recent capacity entries");
    assert!(recent.iter().all(|op| op.kind == OpKind::Put));
    // Put time is attributed to the LTC layer (inclusive nesting).
    assert!(recent
        .iter()
        .any(|op| op.layer_micros[Layer::Ltc.index()] <= op.total_micros));
    assert!(recent[0].summary().contains("put"));
    cluster.shutdown();
}

#[test]
fn disabled_metrics_record_nothing_and_health_still_works() {
    let (cluster, client) = start(false);
    for i in 0..50u64 {
        client.put_numeric(i, b"value").expect("put");
    }
    client.get_numeric(7).expect("get");
    let metrics = cluster.metrics();
    assert!(!metrics.is_enabled());
    assert_eq!(metrics.all_ops_snapshot().count(), 0);
    assert_eq!(metrics.slow_op_count(), 0);

    // The health report still aggregates component stats — only the
    // latency percentiles are absent.
    let health = cluster.health_report();
    assert!(health.total_ops() >= 51);
    assert!(health.op_latencies.is_empty());
    assert!(health.summary().contains("cluster health @ epoch"));
    cluster.shutdown();
}
