//! End-to-end tests for the network front door: the framed wire protocol,
//! `nova-server`'s per-connection handler (auth, admission control,
//! backpressure), and the pooled `RemoteClient`.

use nova_common::config::{ClusterConfig, TenantConfig};
use nova_common::keyspace::encode_key;
use nova_common::{Error, ReadOptions};
use nova_lsm::{presets, NovaClient, NovaCluster};
use nova_proto::{read_message, write_frame, write_message, FrameKind, Message, HEADER_LEN, MAX_PAYLOAD};
use nova_server::{NovaServer, RemoteClient};
use nova_ycsb::{Distribution, DriverConfig, Mix, RunLength, Workload};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Start a small cluster plus a server bound to an ephemeral port, with the
/// given tweaks applied to the server configuration.
fn start_server(
    num_keys: u64,
    tweak: impl FnOnce(&mut ClusterConfig),
) -> (Arc<NovaCluster>, NovaServer, String) {
    let mut config = presets::test_cluster(1, 2, num_keys);
    config.server.listen_addr = "127.0.0.1:0".to_string();
    tweak(&mut config);
    let server_config = config.server.clone();
    let cluster = NovaCluster::start(config).unwrap();
    let server = NovaServer::start(cluster.clone(), &server_config).unwrap();
    let addr = server.local_addr().to_string();
    (cluster, server, addr)
}

#[test]
fn remote_round_trip_end_to_end() {
    let (cluster, mut server, addr) = start_server(10_000, |_| {});
    let client = RemoteClient::connect(&addr).unwrap();

    client.ping().unwrap();

    // Point writes and reads.
    for i in 0..200u64 {
        client.put(&encode_key(i), format!("v-{i}").as_bytes()).unwrap();
    }
    assert_eq!(client.get(&encode_key(7)).unwrap(), Some(b"v-7".to_vec()));
    assert_eq!(client.get(&encode_key(9_999)).unwrap(), None);

    // Delete.
    client.delete(&encode_key(7)).unwrap();
    assert_eq!(client.get(&encode_key(7)).unwrap(), None);

    // Scatter-gather read: present, absent and deleted keys, input order.
    let keys: Vec<Vec<u8>> = [0u64, 7, 42, 9_999, 1].iter().map(|k| encode_key(*k)).collect();
    let values = client.multi_get(&keys).unwrap();
    assert_eq!(values.len(), 5);
    assert_eq!(values[0], Some(b"v-0".to_vec()));
    assert_eq!(values[1], None);
    assert_eq!(values[2], Some(b"v-42".to_vec()));
    assert_eq!(values[3], None);
    assert_eq!(values[4], Some(b"v-1".to_vec()));

    // Batched write.
    let batch: Vec<(Vec<u8>, Vec<u8>)> = (500..540u64)
        .map(|i| (encode_key(i), format!("b-{i}").into_bytes()))
        .collect();
    client.put_batch(&batch).unwrap();
    assert_eq!(client.get(&encode_key(510)).unwrap(), Some(b"b-510".to_vec()));

    // Streaming scan with a tiny chunk so the cursor must resume several
    // times; entries come back in key order without duplicates.
    let entries: Vec<_> = client
        .scan_range(
            &encode_key(0),
            Some(&encode_key(50)),
            ReadOptions::default().with_chunk(7),
        )
        .map(|e| e.unwrap())
        .collect();
    assert_eq!(entries.len(), 49, "keys 0..50 minus deleted key 7");
    let scanned: Vec<Vec<u8>> = entries.iter().map(|e| e.key.to_vec()).collect();
    let mut sorted = scanned.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(scanned, sorted, "cursor must stream unique keys in order");

    // The bounded `scan` helper.
    assert_eq!(client.scan(&encode_key(0), 10).unwrap().len(), 10);

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn malformed_frames_poison_only_their_own_connection() {
    let (cluster, mut server, addr) = start_server(1_000, |_| {});
    let client = RemoteClient::connect(&addr).unwrap();
    client.put(b"0000000000000001", b"alive").unwrap();
    let protocol_errors = cluster.metrics().counter("server.protocol_errors");

    // Garbage bytes (bad magic): the server answers with a protocol-error
    // frame and closes that connection.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(&[0u8; HEADER_LEN + 8]).unwrap();
        raw.flush().unwrap();
        let (_, response) = read_message(&mut &raw).unwrap();
        match response {
            Message::Error(wire) => assert!(matches!(wire_err(&wire), Error::ProtocolError(_))),
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    // A header claiming an oversized payload is rejected the same way.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        let mut header = Vec::new();
        header.extend_from_slice(&nova_proto::MAGIC.to_le_bytes());
        header.push(nova_proto::VERSION);
        header.push(FrameKind::Ping as u8);
        header.extend_from_slice(&1u64.to_le_bytes());
        header.extend_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
        raw.write_all(&header).unwrap();
        raw.flush().unwrap();
        let (_, response) = read_message(&mut &raw).unwrap();
        assert!(matches!(response, Message::Error(_)));
    }

    // A truncated frame (header promises more payload than ever arrives)
    // is detected when the connection drops; the server just moves on.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        let mut header = Vec::new();
        header.extend_from_slice(&nova_proto::MAGIC.to_le_bytes());
        header.push(nova_proto::VERSION);
        header.push(FrameKind::Ping as u8);
        header.extend_from_slice(&2u64.to_le_bytes());
        header.extend_from_slice(&100u32.to_le_bytes());
        raw.write_all(&header).unwrap();
        raw.write_all(&[0u8; 10]).unwrap();
        raw.flush().unwrap();
    }

    // An intact frame whose payload does not decode (unknown kind) keeps
    // the connection alive: the error is answered in-band and a follow-up
    // ping on the *same* socket succeeds.
    {
        let raw = TcpStream::connect(&addr).unwrap();
        write_frame(&mut &raw, 0x77, 9, b"not a real payload").unwrap();
        let (rid, response) = read_message(&mut &raw).unwrap();
        assert_eq!(rid, 9);
        assert!(matches!(response, Message::Error(_)));
        write_message(&mut &raw, 10, &Message::Ping).unwrap();
        let (rid, response) = read_message(&mut &raw).unwrap();
        assert_eq!(rid, 10);
        assert!(matches!(response, Message::Pong));
    }

    // Every poisoned connection was counted, and none of it disturbed the
    // established client or the server as a whole.
    assert!(protocol_errors.get() >= 3, "protocol errors must be counted");
    assert_eq!(client.get(b"0000000000000001").unwrap(), Some(b"alive".to_vec()));
    let late = RemoteClient::connect(&addr).unwrap();
    late.ping().unwrap();

    server.shutdown();
    cluster.shutdown();
}

fn wire_err(wire: &nova_proto::WireError) -> Error {
    nova_proto::wire_to_error(wire)
}

#[test]
fn concurrent_clients_agree_with_a_model() {
    let (cluster, mut server, addr) = start_server(50_000, |_| {});
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 150;

    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let key = encode_key(t * 10_000 + i);
            model.insert(key.clone(), format!("t{t}-{i}").into_bytes());
        }
    }

    // Each thread drives its own disjoint key range through its own client.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let addr = addr.clone();
            scope.spawn(move || {
                let client = RemoteClient::connect(&addr).unwrap();
                for i in 0..PER_THREAD {
                    let key = encode_key(t * 10_000 + i);
                    client.put(&key, format!("t{t}-{i}").as_bytes()).unwrap();
                }
                // Read everything back through the same client.
                let keys: Vec<Vec<u8>> = (0..PER_THREAD).map(|i| encode_key(t * 10_000 + i)).collect();
                let values = client.multi_get(&keys).unwrap();
                for (i, value) in values.iter().enumerate() {
                    assert_eq!(value.as_deref(), Some(format!("t{t}-{i}").as_bytes()));
                }
            });
        }
    });

    // One more client audits the full model.
    let auditor = RemoteClient::connect(&addr).unwrap();
    for (key, expected) in &model {
        assert_eq!(auditor.get(key).unwrap().as_ref(), Some(expected));
    }

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn rate_limited_tenant_is_shed_with_busy_and_recovers_with_retries() {
    let (cluster, mut server, addr) = start_server(1_000, |config| {
        // One operation per second, and a retry hint long enough that the
        // client's bounded backoff spans a full refill interval.
        config.server.retry_after_micros = 200_000;
        config.server.tenants = vec![TenantConfig {
            name: "metered".into(),
            token: "m-token".into(),
            ops_per_sec: 1,
            admin: false,
        }];
    });

    // With retries disabled, the second operation in the same second
    // surfaces the retryable busy shed.
    let strict = RemoteClient::connect_as(&addr, "metered", "m-token")
        .unwrap()
        .with_busy_retries(0);
    strict.put(&encode_key(1), b"first").unwrap();
    let err = strict.put(&encode_key(2), b"second").unwrap_err();
    assert!(matches!(err, Error::Busy { .. }), "expected busy, got {err}");
    assert!(err.is_retryable());
    assert!(
        cluster.metrics().counter("server.shed.ratelimit").get() >= 1,
        "the shed must be counted"
    );

    // The default client retries with the server-suggested backoff and
    // eventually gets through once the bucket refills.
    let patient = RemoteClient::connect_as(&addr, "metered", "m-token").unwrap();
    patient.put(&encode_key(3), b"third").unwrap();
    assert_eq!(patient.get(&encode_key(3)).unwrap(), Some(b"third".to_vec()));

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn backpressure_sheds_writes_but_keeps_serving_reads() {
    let (cluster, mut server, addr) = start_server(1_000, |config| {
        // Threshold 0: every write finds the backlog at-or-above it.
        config.server.shed_backlog_threshold = 0;
    });
    // Load behind the server's back so there is something to read.
    let local = NovaClient::new(cluster.clone());
    local.put(&encode_key(5), b"preloaded").unwrap();

    let client = RemoteClient::connect(&addr).unwrap().with_busy_retries(0);
    let err = client.put(&encode_key(6), b"rejected").unwrap_err();
    assert!(matches!(err, Error::Busy { .. }), "expected busy, got {err}");
    let err = client.put_batch(&[(encode_key(7), b"no".to_vec())]).unwrap_err();
    assert!(matches!(err, Error::Busy { .. }));

    // Reads are never shed by backpressure.
    assert_eq!(client.get(&encode_key(5)).unwrap(), Some(b"preloaded".to_vec()));
    assert_eq!(
        client.get(&encode_key(6)).unwrap(),
        None,
        "the shed write must not land"
    );
    assert!(cluster.metrics().counter("server.shed.backpressure").get() >= 2);

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn auth_gates_operations_and_admin_frames() {
    let (cluster, mut server, addr) = start_server(1_000, |config| {
        config.server.require_auth = true;
        config.server.tenants = vec![
            TenantConfig::admin("root", "root-token"),
            TenantConfig {
                name: "app".into(),
                token: "app-token".into(),
                ops_per_sec: 0,
                admin: false,
            },
        ];
    });

    // A wrong token fails at the handshake (connect dials eagerly).
    let err = RemoteClient::connect_as(&addr, "app", "wrong").unwrap_err();
    assert!(
        matches!(err, Error::AuthFailed(_)),
        "expected auth failure, got {err}"
    );
    let err = RemoteClient::connect_as(&addr, "ghost", "app-token").unwrap_err();
    assert!(matches!(err, Error::AuthFailed(_)));

    // No handshake at all: the connection opens, but operations are denied.
    let anonymous = RemoteClient::connect(&addr).unwrap();
    let err = anonymous.get(&encode_key(1)).unwrap_err();
    assert!(matches!(err, Error::AuthFailed(_)));

    // A normal tenant can read and write but not reach the admin frames.
    let app = RemoteClient::connect_as(&addr, "app", "app-token").unwrap();
    app.put(&encode_key(1), b"hello").unwrap();
    assert_eq!(app.get(&encode_key(1)).unwrap(), Some(b"hello".to_vec()));
    let err = app.health_json().unwrap_err();
    assert!(matches!(err, Error::AuthFailed(_)));
    let err = app.metrics_json().unwrap_err();
    assert!(matches!(err, Error::AuthFailed(_)));

    // An admin tenant gets both reports as JSON.
    let root = RemoteClient::connect_as(&addr, "root", "root-token").unwrap();
    let health = root.health_json().unwrap();
    assert!(health.contains("\"num_ltcs\""), "unexpected health: {health}");
    let metrics = root.metrics_json().unwrap();
    assert!(
        metrics.contains("server.connections_total"),
        "unexpected metrics: {metrics}"
    );

    assert!(cluster.metrics().counter("server.auth_failures").get() >= 3);

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn secondary_index_round_trip_over_the_wire() {
    let (cluster, mut server, addr) = start_server(10_000, |_| {});
    let client = RemoteClient::connect(&addr).unwrap();

    // Rows whose first four bytes are a category code.
    let cat = |i: u64| format!("{:04}", i % 7);
    for i in 0..200u64 {
        let value = format!("{}-row-{i}", cat(i));
        client.put(&encode_key(i), value.as_bytes()).unwrap();
    }

    // Create the index (anonymous connections are admin when auth is off)
    // and stream one category back with a tiny chunk so the cursor must
    // resume on the opaque token several times.
    client.create_index("by_cat", Some((0, 4))).unwrap();
    let got: Vec<Vec<u8>> = client
        .index_scan("by_cat", Some(b"0003"), Some(b"0004"), 5)
        .map(|pair| pair.unwrap())
        .map(|(secondary, primary)| {
            assert_eq!(secondary, b"0003");
            primary
        })
        .collect();
    let expected: Vec<Vec<u8>> = (0..200u64).filter(|i| i % 7 == 3).map(encode_key).collect();
    assert_eq!(got, expected, "indexed primaries in order, no dups");

    // Writes after index creation are maintained: moving a row to a new
    // category updates both postings.
    client.put(&encode_key(3), b"9999-moved").unwrap();
    let still: Vec<Vec<u8>> = client
        .index_scan("by_cat", Some(b"0003"), Some(b"0004"), 64)
        .map(|pair| pair.unwrap().1)
        .collect();
    assert!(!still.contains(&encode_key(3)), "old posting must be gone");
    let moved: Vec<Vec<u8>> = client
        .index_scan("by_cat", Some(b"9999"), None, 64)
        .map(|pair| pair.unwrap().1)
        .collect();
    assert_eq!(moved, vec![encode_key(3)]);

    // Unknown index surfaces the typed terminal error.
    let err = client
        .index_scan("ghost", None, None, 8)
        .next()
        .unwrap()
        .unwrap_err();
    assert!(matches!(err, Error::IndexNotFound(_)), "got {err}");

    // Dropping purges the postings and unregisters the name.
    client.drop_index("by_cat").unwrap();
    let err = client
        .index_scan("by_cat", None, None, 8)
        .next()
        .unwrap()
        .unwrap_err();
    assert!(matches!(err, Error::IndexNotFound(_)), "got {err}");

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn index_admin_frames_require_an_admin_tenant() {
    let (cluster, mut server, addr) = start_server(1_000, |config| {
        config.server.require_auth = true;
        config.server.tenants = vec![
            TenantConfig::admin("root", "root-token"),
            TenantConfig {
                name: "app".into(),
                token: "app-token".into(),
                ops_per_sec: 0,
                admin: false,
            },
        ];
    });

    let app = RemoteClient::connect_as(&addr, "app", "app-token").unwrap();
    let err = app.create_index("by_cat", None).unwrap_err();
    assert!(matches!(err, Error::AuthFailed(_)), "got {err}");
    let err = app.drop_index("by_cat").unwrap_err();
    assert!(matches!(err, Error::AuthFailed(_)), "got {err}");

    // The admin tenant may create; the plain tenant may then scan.
    let root = RemoteClient::connect_as(&addr, "root", "root-token").unwrap();
    root.create_index("by_cat", None).unwrap();
    app.put(&encode_key(1), b"red").unwrap();
    let got: Vec<_> = app
        .index_scan("by_cat", Some(b"red"), None, 8)
        .map(|pair| pair.unwrap())
        .collect();
    assert_eq!(got, vec![(b"red".to_vec(), encode_key(1))]);

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn ycsb_driver_runs_unchanged_over_the_wire() {
    let (cluster, mut server, addr) = start_server(2_000, |_| {});
    let client = RemoteClient::connect(&addr).unwrap();

    nova_ycsb::load(&client, 2_000, 64, 2).unwrap();
    let workload = Workload::new(Mix::Rw50, Distribution::Uniform, 2_000, 64);
    let config = DriverConfig {
        threads: 2,
        run_length: RunLength::Operations(300),
        sample_interval: Duration::from_millis(100),
        seed: 7,
        retry_budget: 8,
        batch_size: 1,
        read_batch_size: 1,
    };
    let report = nova_ycsb::run(&client, &workload, &config);
    assert!(
        report.operations >= 600,
        "2 threads x 300 ops, got {}",
        report.operations
    );
    assert_eq!(
        report.errors, 0,
        "the wire protocol must not surface terminal errors"
    );
    assert_eq!(cluster.metrics().counter("server.protocol_errors").get(), 0);

    server.shutdown();
    cluster.shutdown();
}
