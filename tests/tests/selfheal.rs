//! Self-healing (Section 10's failure model, closed-loop): the failure
//! detector confirms dead nodes, LTC failures trigger the epoch-guarded
//! failover automatically, failed StoCs are auto-drained and their
//! replication debt repaired under the I/O budget — all without an operator
//! call. The chaos harness at the bottom kills random nodes under concurrent
//! write load and asserts zero lost acknowledged writes.

use nova_common::config::{AvailabilityPolicy, LogPolicy};
use nova_lsm::{presets, NovaClient, NovaCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A cluster where acknowledged writes survive node failures: replicated log
/// records (so memtable state is recoverable) and replicated SSTable
/// fragments (so flushed state survives a StoC loss).
fn durable_config(num_ltcs: usize, num_stocs: usize, num_keys: u64) -> nova_common::config::ClusterConfig {
    let mut config = presets::test_cluster(num_ltcs, num_stocs, num_keys);
    config.ranges_per_ltc = 2;
    config.range.scatter_width = 2;
    config.range.availability = AvailabilityPolicy::Replicate(2);
    config.range.log_policy = LogPolicy::InMemoryReplicated { replicas: 2 };
    config
}

fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

/// Writer threads hammering disjoint key slices, each remembering the last
/// sequence number the cluster acknowledged per key. Failures during an
/// outage window are fine — those writes were never acknowledged — but an
/// acknowledged sequence must never be lost: the final read of a key must
/// return its last acked sequence or a later one from the same writer.
struct AckedWrites {
    per_writer: Vec<Vec<(u64, u64)>>,
}

impl AckedWrites {
    fn verify(&self, client: &NovaClient) {
        let mut lost = Vec::new();
        for acked in &self.per_writer {
            for (key, seq) in acked {
                match client.get_numeric(*key) {
                    Ok(Some(value)) => {
                        let read: u64 = std::str::from_utf8(&value)
                            .expect("writer values are ascii")
                            .trim_start_matches('0')
                            .parse()
                            .unwrap_or(0);
                        if read < *seq {
                            lost.push((*key, *seq, format!("read back seq {read}")));
                        }
                    }
                    Ok(None) => lost.push((*key, *seq, "absent".into())),
                    Err(e) => lost.push((*key, *seq, format!("{e:?}"))),
                }
            }
        }
        assert!(lost.is_empty(), "lost acknowledged writes: {lost:?}");
    }
}

/// Spawn `writers` threads over `keys_per_writer`-wide slices starting at
/// multiples of `stride`, run `body` while they hammer the cluster, then
/// stop them and return every acknowledged (key, seq).
fn with_writers(
    client: &NovaClient,
    writers: u64,
    keys_per_writer: u64,
    stride: u64,
    body: impl FnOnce(),
) -> AckedWrites {
    let stop = AtomicBool::new(false);
    let per_writer: Vec<Vec<(u64, u64)>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..writers {
            let client = client.clone();
            let stop = &stop;
            handles.push(scope.spawn(move || {
                let lo = w * stride;
                let mut acked: Vec<(u64, u64)> = Vec::new();
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for key in lo..lo + keys_per_writer {
                        seq += 1;
                        let value = format!("{seq:020}");
                        // An error is an unacknowledged write: during an
                        // outage window the client surfaces the fault and
                        // the writer simply moves on.
                        if client.put_numeric(key, value.as_bytes()).is_ok() {
                            match acked.iter_mut().find(|(k, _)| *k == key) {
                                Some(slot) => slot.1 = seq,
                                None => acked.push((key, seq)),
                            }
                        }
                    }
                    // Breathe between passes: the point is concurrent load,
                    // not starving the supervisor (and the sibling tests'
                    // clusters) of CPU.
                    std::thread::sleep(Duration::from_millis(1));
                }
                acked
            }));
        }
        // Stop the writers even when the body panics: without this, a failed
        // assertion would leave the scoped writers spinning forever and the
        // test would hang instead of failing.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        stop.store(true, Ordering::SeqCst);
        let acked = handles.into_iter().map(|h| h.join().unwrap()).collect();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
        acked
    });
    AckedWrites { per_writer }
}

/// The tentpole: a confirmed LTC failure fails over automatically — no
/// operator call — while concurrent writers keep hammering the keyspace,
/// and every acknowledged write survives.
#[test]
fn confirmed_ltc_failure_fails_over_automatically_under_load() {
    let mut config = durable_config(2, 3, 4_000);
    config.range.log_policy = LogPolicy::InMemoryReplicated { replicas: 3 };
    config.supervisor.enabled = true;
    config.supervisor.heartbeat_millis = 5;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    let victim = cluster.ltc_ids()[0];
    let victim_node = cluster.ltc_node(victim).unwrap();
    let survivor = cluster.ltc_ids()[1];

    // 4 writers: two on the victim's half of the keyspace, two on the
    // survivor's.
    let acked = with_writers(&client, 4, 200, 1_000, || {
        // Ramp up, then kill the LTC's node mid-flight.
        std::thread::sleep(Duration::from_millis(50));
        cluster.fabric().fail_node(victim_node);
        let healed = wait_until(Duration::from_secs(30), || {
            let stats = cluster.selfheal_stats();
            stats.failovers >= 1 && stats.pending_failovers == 0 && !cluster.ltc_ids().contains(&victim)
        });
        assert!(healed, "the supervisor must fail over the dead LTC on its own");
        // Let the writers observe the healed configuration for a while.
        std::thread::sleep(Duration::from_millis(100));
    });

    // The survivor owns everything and the writers made progress on both
    // halves — including the failed-over ranges, post-recovery.
    assert_eq!(cluster.coordinator().configuration().ranges_of(survivor).len(), 4);
    for per_writer in &acked.per_writer {
        assert!(!per_writer.is_empty(), "every writer must make progress");
    }
    acked.verify(&client);

    let stats = cluster.selfheal_stats();
    assert_eq!(stats.failovers, 1);
    assert!(stats.ticks > 0, "the background supervisor ran");
    let snapshot = cluster.metrics_snapshot();
    assert!(snapshot
        .gauges
        .contains_key("selfheal.last_time_to_detect_micros"));
    assert!(snapshot
        .gauges
        .contains_key("selfheal.last_time_to_recover_micros"));
    cluster.shutdown();
}

/// A confirmed StoC failure is auto-drained (rotating every range off its
/// log files), its replication debt is repaired onto the surviving healthy
/// StoCs, and the StoC rejoins placement when its node recovers. Driven by
/// manual `self_heal_tick` calls so every step is deterministic.
#[test]
fn stoc_failure_auto_drains_repairs_debt_and_rejoins_on_recovery() {
    let mut config = durable_config(1, 3, 2_000);
    config.supervisor.rereplication_bytes_per_sec = 0; // unthrottled
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    for i in 0..400u64 {
        client.put_numeric(i, format!("durable-{i}").as_bytes()).unwrap();
    }
    cluster.flush_all().unwrap();
    assert!(
        cluster.replication_debt().is_zero(),
        "a healthy cluster owes nothing: {:?}",
        cluster.replication_debt()
    );

    let victim = *cluster.stoc_ids().last().unwrap();
    let victim_node = cluster.stoc_node(victim).unwrap();
    cluster.fabric().fail_node(victim_node);

    // Three strikes confirm the failure; the same round drains the StoC and
    // starts repairing.
    let mut drained = false;
    for _ in 0..3 {
        let report = cluster.self_heal_tick();
        drained |= report.stocs_drained.contains(&victim);
    }
    assert!(drained, "three failed probes must confirm and drain the StoC");
    assert!(!cluster.stoc_ids().contains(&victim), "drained from placement");
    assert_eq!(cluster.selfheal_stats().stoc_drains, 1);

    // Reads survive on the surviving replicas; writes survive because the
    // rotation moved open log files off the dead StoC.
    assert_eq!(
        client.get_numeric(3).unwrap().expect("present").as_ref(),
        b"durable-3"
    );
    client.put_numeric(1_500, b"written-degraded").unwrap();

    // Repair converges: every fragment and metadata block is back at its
    // replication target on the remaining healthy StoCs. (Rotated memtables
    // flush in the background, so the log-replica debt drains with them.)
    let healed = wait_until(Duration::from_secs(30), || {
        cluster.self_heal_tick();
        cluster.replication_debt().is_zero()
    });
    assert!(
        healed,
        "re-replication must restore the target: {:?}",
        cluster.replication_debt()
    );
    let stats = cluster.selfheal_stats();
    assert!(
        stats.repaired_fragments + stats.repaired_meta_blocks > 0,
        "healing must have copied pieces, not just waited: {stats:?}"
    );
    assert!(stats.repaired_bytes > 0);

    // Detector state and debt are operator-visible.
    let health = cluster.health_report();
    assert!(
        health.detector.iter().any(|s| s.confirmed),
        "confirmed node visible"
    );
    assert!(health.summary().contains("detect"));
    assert!(health.to_json().contains("\"replication_debt\""));
    assert!(health.to_json().contains("\"selfheal\""));

    // The node comes back: the *auto*-drained StoC rejoins placement.
    cluster.fabric().recover_node(victim_node);
    cluster.self_heal_tick();
    assert!(cluster.stoc_ids().contains(&victim), "auto-drained StoCs rejoin");
    assert_eq!(cluster.selfheal_stats().stoc_rejoins, 1);
    cluster.shutdown();
}

/// The token-bucket budget genuinely throttles: with a 1 byte/s budget the
/// first copy overdraws the bucket and everything else is deferred to later
/// rounds instead of being copied immediately.
#[test]
fn rereplication_respects_the_io_budget() {
    let mut config = durable_config(1, 3, 2_000);
    config.supervisor.rereplication_bytes_per_sec = 1;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    for i in 0..400u64 {
        client.put_numeric(i, format!("budgeted-{i}").as_bytes()).unwrap();
    }
    cluster.flush_all().unwrap();
    let victim = *cluster.stoc_ids().last().unwrap();
    cluster.fabric().fail_node(cluster.stoc_node(victim).unwrap());

    let mut deferred = 0;
    for _ in 0..4 {
        deferred += cluster.self_heal_tick().deferred_repairs;
    }
    assert!(deferred > 0, "a starved budget must defer repairs");
    assert!(
        !cluster.replication_debt().is_zero(),
        "debt must remain while the budget withholds copies"
    );
    assert_eq!(cluster.selfheal_stats().deferred_repairs, deferred);
    cluster.shutdown();
}

/// Partial failover: when one range cannot be rebuilt (its manifest-home
/// StoC died with the LTC), the other ranges are still recovered, the stuck
/// one stays pending, and the retry completes once the fault clears.
#[test]
fn unrecoverable_range_heals_the_rest_and_completes_on_retry() {
    let mut config = durable_config(2, 3, 4_000);
    config.range.log_policy = LogPolicy::InMemoryReplicated { replicas: 3 };
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    for i in 0..4_000u64 {
        client.put_numeric(i, format!("pinned-{i}").as_bytes()).unwrap();
    }
    cluster.flush_all().unwrap();

    let victim = cluster.ltc_ids()[0];
    let survivor = cluster.ltc_ids()[1];
    let ranges = cluster.coordinator().configuration().ranges_of(victim);
    assert_eq!(ranges.len(), 2);
    // Kill the LTC *and* the StoC holding the first range's MANIFEST: that
    // range cannot be rebuilt until the StoC returns.
    let stuck_home = cluster
        .coordinator()
        .configuration()
        .manifest_home(ranges[0])
        .expect("pinned home");
    let stuck_node = cluster.stoc_node(stuck_home).unwrap();
    cluster.fabric().fail_node(cluster.ltc_node(victim).unwrap());
    cluster.fabric().fail_node(stuck_node);

    let mut last = None;
    for _ in 0..3 {
        last = Some(cluster.self_heal_tick());
    }
    let report = last.unwrap();
    assert!(
        report.failovers_pending.contains(&victim),
        "the stuck range keeps the failover pending: {report:?}"
    );
    assert_eq!(cluster.selfheal_stats().pending_failovers, 1);
    // The rest of the fleet healed: the survivable range already moved.
    let moved = cluster.coordinator().configuration().ranges_of(survivor);
    assert!(
        moved.contains(&ranges[1]),
        "the recoverable range must not be held hostage: survivor owns {moved:?}"
    );

    // The fault clears; the next rounds finish the job (the detector must
    // first see the StoC answer again before the repair path trusts it).
    cluster.fabric().recover_node(stuck_node);
    let healed = wait_until(Duration::from_secs(30), || {
        let report = cluster.self_heal_tick();
        report.failovers_completed.contains(&victim) || cluster.selfheal_stats().pending_failovers == 0
    });
    assert!(healed, "the retry must complete once the manifest home is back");
    assert_eq!(cluster.selfheal_stats().failovers, 1);
    assert_eq!(
        cluster.coordinator().configuration().ranges_of(survivor).len(),
        4,
        "every range ends up on the survivor"
    );
    // Nothing acknowledged was lost across the partial failover.
    for i in (0..4_000u64).step_by(41) {
        assert_eq!(
            client.get_numeric(i).unwrap().expect("present").as_ref(),
            format!("pinned-{i}").as_bytes()
        );
    }
    cluster.shutdown();
}

/// The chaos harness: seeded random single-node kills — LTCs and StoCs —
/// under concurrent write load. Every failure is healed automatically
/// (failover or drain+repair), the fleet is restored between rounds, and at
/// the end not one acknowledged write is missing.
#[test]
fn random_node_kills_under_load_lose_no_acked_writes() {
    let mut config = durable_config(2, 3, 4_000);
    config.supervisor.enabled = true;
    config.supervisor.heartbeat_millis = 5;
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);

    let acked = with_writers(&client, 4, 150, 1_000, || {
        std::thread::sleep(Duration::from_millis(30));
        for round in 0..4 {
            // Keep at least two LTCs (a failover needs a survivor) and three
            // StoCs (ρ=2 plus one to lose) at all times.
            let kill_ltc = cluster.ltc_ids().len() >= 2 && rng.gen_bool(0.5);
            if kill_ltc {
                let ltcs = cluster.ltc_ids();
                let victim = ltcs[rng.gen_range(0..ltcs.len())];
                cluster.fabric().fail_node(cluster.ltc_node(victim).unwrap());
                let healed = wait_until(Duration::from_secs(30), || {
                    !cluster.ltc_ids().contains(&victim) && cluster.selfheal_stats().pending_failovers == 0
                });
                assert!(healed, "round {round}: LTC {victim:?} failover stuck");
                // Restore fleet capacity for the next round (the dead node
                // stays dead; the replacement gets a fresh one).
                cluster.add_ltc().unwrap();
            } else {
                let stocs = cluster.stoc_ids();
                let victim = stocs[rng.gen_range(0..stocs.len())];
                let node = cluster.stoc_node(victim).unwrap();
                cluster.fabric().fail_node(node);
                let drained = wait_until(Duration::from_secs(30), || !cluster.stoc_ids().contains(&victim));
                assert!(drained, "round {round}: StoC {victim:?} never drained");
                // Bring the node back, then require full health: rejoined
                // placement and zero replication debt. (If the victim hosted
                // a range's pinned manifest-home, the metadata debt can only
                // clear once the node is back.)
                cluster.fabric().recover_node(node);
                let healed = wait_until(Duration::from_secs(30), || {
                    cluster.stoc_ids().contains(&victim) && cluster.replication_debt().is_zero()
                });
                assert!(healed, "round {round}: StoC {victim:?} repair stuck");
            }
            // A quiet interval so the writers observe the healed fleet.
            std::thread::sleep(Duration::from_millis(50));
        }
    });

    for per_writer in &acked.per_writer {
        assert!(!per_writer.is_empty(), "every writer must make progress");
    }
    acked.verify(&client);
    let stats = cluster.selfheal_stats();
    assert_eq!(stats.pending_failovers, 0);
    assert!(
        stats.failovers + stats.stoc_drains >= 4,
        "four rounds of kills must all have been healed: {stats:?}"
    );
    cluster.shutdown();
}
