//! The batched write path end to end: `NovaClient::put_batch` splitting
//! across range (and LTC) boundaries, retrying per shard through a live
//! migration, and group-committed log records recovering after an LTC
//! failure — including a property test that interleaved batched and
//! unbatched writers recover to exactly the state a model database predicts.

use nova_common::config::LogPolicy;
use nova_common::keyspace::encode_key;
use nova_lsm::{presets, NovaClient, NovaCluster};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

fn batch(lo: u64, hi: u64, tag: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
    (lo..hi)
        .map(|k| (encode_key(k), format!("{tag}-{k}").into_bytes()))
        .collect()
}

/// A batch spanning every range of a two-LTC cluster is split per range,
/// each shard lands on its owning LTC, and every entry is readable.
#[test]
fn put_batch_splits_across_ranges_and_ltcs() {
    let mut config = presets::test_cluster(2, 3, 4_000);
    config.ranges_per_ltc = 2; // 4 ranges, 1 000 keys each
    config.range.log_policy = LogPolicy::InMemoryReplicated { replicas: 2 };
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    // Interleave keys of all four ranges in one batch so the split has to
    // regroup them (submission order preserved per range).
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..400u64)
        .map(|i| {
            let key = (i % 4) * 1_000 + i; // ranges 0..4 round-robin
            (
                encode_key(key % 4_000),
                format!("split-{}", key % 4_000).into_bytes(),
            )
        })
        .collect();
    client.put_batch(&items).unwrap();
    for (key, value) in &items {
        assert_eq!(client.get(key).unwrap().expect("present").as_ref(), &value[..]);
    }
    // Batches also observe later single-key overwrites and vice versa.
    client.put_numeric(1, b"overwritten").unwrap();
    assert_eq!(
        client.get_numeric(1).unwrap().expect("present").as_ref(),
        b"overwritten"
    );
    client.put_batch(&batch(1, 2, "batch-wins")).unwrap();
    assert_eq!(
        client.get_numeric(1).unwrap().expect("present").as_ref(),
        b"batch-wins-1"
    );
    cluster.shutdown();
}

/// Batched writers keep committing through a live range migration: shards
/// that hit the handoff window are refreshed and retried internally, no
/// terminal error surfaces, and every acknowledged batch survives the flip.
#[test]
fn put_batch_under_live_migration_retries_and_loses_nothing() {
    let mut config = presets::test_cluster(2, 2, 4_000);
    config.ranges_per_ltc = 2;
    config.range.log_policy = LogPolicy::InMemoryReplicated { replicas: 2 };
    let cluster = NovaCluster::start(config).unwrap();
    let client = NovaClient::new(cluster.clone());

    let ltcs = cluster.ltc_ids();
    let source = ltcs[0];
    let destination = ltcs[1];
    let range = cluster.coordinator().configuration().ranges_of(source)[0];
    let base = range.0 as u64 * 1_000;

    let stop = AtomicBool::new(false);
    let terminal_errors = AtomicU64::new(0);
    const WRITERS: u64 = 4;
    // A multiple of BATCH so chunks never overrun into a sibling's slice.
    const KEYS_PER_WRITER: u64 = 192;
    const BATCH: u64 = 16;

    // Each writer repeatedly re-puts its key slice in batches of 16 that
    // *straddle the migrating range's boundary* (half the keys belong to the
    // neighbouring range), so every batch exercises the cross-range split
    // and the per-shard retry.
    let acked: Vec<Vec<(u64, String)>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let client = client.clone();
            let stop = &stop;
            let terminal_errors = &terminal_errors;
            handles.push(scope.spawn(move || {
                let lo = base + w * KEYS_PER_WRITER;
                let mut last: Vec<(u64, String)> = Vec::new();
                let mut iter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for chunk_start in (lo..lo + KEYS_PER_WRITER).step_by(BATCH as usize) {
                        let keys: Vec<u64> = (chunk_start..chunk_start + BATCH)
                            .map(|k| {
                                // Odd keys shifted into the next range:
                                // cross-range batches on every call.
                                if k % 2 == 1 {
                                    (k + 1_000) % 4_000
                                } else {
                                    k
                                }
                            })
                            .collect();
                        let items: Vec<(Vec<u8>, Vec<u8>)> = keys
                            .iter()
                            .map(|k| (encode_key(*k), format!("w{w}-i{iter}-k{k}").into_bytes()))
                            .collect();
                        match client.put_batch(&items) {
                            Ok(()) => {
                                for k in &keys {
                                    let value = format!("w{w}-i{iter}-k{k}");
                                    match last.iter_mut().find(|(key, _)| key == k) {
                                        Some(slot) => slot.1 = value,
                                        None => last.push((*k, value)),
                                    }
                                }
                            }
                            Err(_) => {
                                terminal_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    iter += 1;
                }
                last
            }));
        }

        std::thread::sleep(Duration::from_millis(30));
        cluster.migrate_range(range, destination).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::SeqCst);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        terminal_errors.load(Ordering::SeqCst),
        0,
        "put_batch under migration must retry internally, never error"
    );
    assert_eq!(
        cluster.coordinator().configuration().ltc_of(range),
        Some(destination)
    );
    assert!(
        client.config_retries() > 0,
        "the migration window must have forced at least one stale-config retry"
    );
    for per_writer in &acked {
        assert!(!per_writer.is_empty(), "every writer must make progress");
        for (key, value) in per_writer {
            assert_eq!(
                client.get_numeric(*key).unwrap().expect("present").as_ref(),
                value.as_bytes(),
                "key {key} lost its last acknowledged batched write across the migration"
            );
        }
    }
    cluster.shutdown();
}

/// One step of the interleaved-writer script.
#[derive(Debug, Clone)]
enum Step {
    /// A batched chunk of puts applied through `put_batch`.
    Batch(Vec<(u64, Vec<u8>)>),
    /// A single unbatched put.
    Put(u64, Vec<u8>),
    /// A single unbatched delete.
    Delete(u64),
}

fn step_strategy(num_keys: u64) -> impl Strategy<Value = Step> {
    prop_oneof![
        proptest::collection::vec(
            (0..num_keys, proptest::collection::vec(any::<u8>(), 1..24)),
            1..12
        )
        .prop_map(Step::Batch),
        (0..num_keys, proptest::collection::vec(any::<u8>(), 1..24)).prop_map(|(k, v)| Step::Put(k, v)),
        (0..num_keys).prop_map(Step::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, max_shrink_iters: 0, ..ProptestConfig::default() })]

    /// Interleaved batched and unbatched writes, an LTC crash, and a
    /// log-driven recovery must converge to exactly the state a model
    /// database predicts: group commit may change how records travel, never
    /// what recovers.
    #[test]
    fn interleaved_batched_and_unbatched_writers_recover_to_the_same_state(
        steps in proptest::collection::vec(step_strategy(2_000), 1..40),
    ) {
        let mut config = presets::test_cluster(2, 3, 2_000);
        config.ranges_per_ltc = 1;
        config.range.log_policy = LogPolicy::InMemoryReplicated { replicas: 2 };
        let cluster = NovaCluster::start(config).unwrap();
        let client = NovaClient::new(cluster.clone());

        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for step in &steps {
            match step {
                Step::Batch(items) => {
                    let encoded: Vec<(Vec<u8>, Vec<u8>)> = items
                        .iter()
                        .map(|(k, v)| (encode_key(*k), v.clone()))
                        .collect();
                    client.put_batch(&encoded).unwrap();
                    for (k, v) in items {
                        model.insert(*k, v.clone());
                    }
                }
                Step::Put(k, v) => {
                    client.put_numeric(*k, v).unwrap();
                    model.insert(*k, v.clone());
                }
                Step::Delete(k) => {
                    client.delete(&encode_key(*k)).unwrap();
                    model.remove(k);
                }
            }
        }

        // Crash one LTC without flushing: its memtables are gone, and the
        // (group-committed) log records are the only copy of its writes.
        let failed = cluster.ltc_ids()[0];
        cluster.fail_and_recover_ltc(failed).unwrap();

        for k in 0..2_000u64 {
            match (client.get_numeric(k), model.get(&k)) {
                (Ok(Some(v)), Some(expected)) => prop_assert_eq!(
                    v.as_ref(), expected.as_slice(), "key {} recovered the wrong value", k
                ),
                (Ok(None), None) => {}
                (Ok(Some(_)), None) => prop_assert!(false, "key {} should not exist after recovery", k),
                (Ok(None), Some(_)) => prop_assert!(false, "key {} lost after recovery", k),
                (Err(e), expected) => prop_assert!(
                    false, "get({}) failed after recovery: {} (expected {:?})", k, e, expected
                ),
            }
        }
        cluster.shutdown();
    }
}
