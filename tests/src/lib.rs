//! Shared helpers for the cross-crate integration tests. The tests themselves live in `tests/tests/`.
