//! A minimal, dependency-free stand-in for the `bytes` crate. The build
//! environment has no access to crates.io, so the workspace vendors the part
//! of the API it uses: an immutable, cheaply-cloneable byte container whose
//! `slice` shares the underlying allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. `clone` and `slice` are O(1)
/// and share the backing allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice (copies once into the shared allocation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(bytes);
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range starts after it ends ({begin} > {end})");
        assert!(
            end <= len,
            "slice range {end} out of bounds of buffer of {len} bytes"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_and_bounds_check() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b, Bytes::from_static(b"abc"));
        assert_eq!(b.as_ref(), b"abc");
        assert_eq!(b, vec![b'a', b'b', b'c']);
        assert!(b < Bytes::from_static(b"abd"));
    }
}
