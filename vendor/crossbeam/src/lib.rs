//! A minimal, dependency-free stand-in for the `crossbeam` crate. The build
//! environment has no access to crates.io, so the workspace vendors the only
//! module it uses: multi-producer multi-consumer channels whose `Sender` and
//! `Receiver` are both `Clone + Send + Sync`, built on a mutex + condvar.

/// Multi-producer, multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create a bounded channel. This shim never blocks senders (the
    /// workspace only uses tiny bounds for one-shot replies), so the capacity
    /// is advisory.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue a message. Fails if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }

        /// Take a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = state.queue.pop_front() {
                Ok(v)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// True if no messages are queued right now.
        pub fn is_empty(&self) -> bool {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .is_empty()
        }

        /// Number of messages queued right now.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender was dropped and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender was dropped and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_round_trip_across_threads() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<i32>>());
            assert!(rx.is_empty());
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());

            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_when_idle() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }
    }
}
