//! No-op derive macros standing in for `serde_derive`. The workspace tags
//! config and id types with `#[derive(Serialize, Deserialize)]` for forward
//! compatibility but never serializes them, so the derives expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
