//! A minimal, dependency-free stand-in for the `parking_lot` crate, backed by
//! `std::sync` primitives. The build environment has no access to crates.io,
//! so the workspace vendors the small API surface it actually uses: poison-free
//! `Mutex`/`RwLock` whose `lock()`/`read()`/`write()` return guards directly.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual exclusion primitive (poisoning is swallowed, as in `parking_lot`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (poisoning is swallowed, as in `parking_lot`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
