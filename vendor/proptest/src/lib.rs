//! A minimal, dependency-free stand-in for the `proptest` crate. The build
//! environment has no access to crates.io, so the workspace vendors the
//! surface its property tests use: the `proptest!` macro, `Strategy` with
//! `prop_map`, `any::<T>()`, range strategies, `collection::{vec, btree_set}`,
//! `prop_oneof!` and the `prop_assert*` macros.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the sampled inputs in the panic message (via the normal `assert!` path).
//! Sampling is deterministic per test name, so failures reproduce.

use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic generator used to sample strategy values (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary string (e.g. the test name), so
    /// every test gets a distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        self.next_u64() % bound
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; this shim never times cases out.
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
            timeout: 0,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of values of an output type. Object-safe so strategies can be
/// boxed and unioned by `prop_oneof!`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_for_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// A uniform choice between boxed strategies of one output type; built by
/// `prop_oneof!`.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build a union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// A strategy for `Vec`s whose length is uniform in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `BTreeSet`s whose size is within `size` (best-effort:
    /// duplicate samples are retried a bounded number of times).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Sets of values from `element` with a size in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Strategy trait and helpers re-exported like the real crate's `strategy`
/// module.
pub mod strategy {
    pub use super::{Just, Map, Strategy, Union};
}

/// Re-export hub mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::collection;
    pub use super::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Needed so `proptest::collection::vec(any::<u8>(), 0..N)` samples of sets
/// and vectors can be compared in tests; kept internal.
#[doc(hidden)]
pub fn __sorted<T: Ord>(set: BTreeSet<T>) -> Vec<T> {
    set.into_iter().collect()
}

/// The main property-test macro: expands each `fn name(arg in strategy, ..)`
/// into a `#[test]` that samples the strategies `config.cases` times and runs
/// the body. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let body = move || -> () { $body };
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(body));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            case + 1,
                            config.cases,
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition. Expands to an early return from the case body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// A uniform choice among several strategies with a common output type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_sample_in_bounds() {
        let mut rng = super::TestRng::deterministic("t1");
        for _ in 0..200 {
            let v = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let _: u8 = any::<u8>().sample(&mut rng);
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = super::TestRng::deterministic("t2");
        for _ in 0..50 {
            let v = collection::vec(any::<u8>(), 1..4).sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            let s = collection::btree_set(0u64..1000, 1..8).sample(&mut rng);
            assert!(!s.is_empty() && s.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_round_trip(x in 0u64..100, ys in collection::vec(any::<u8>(), 0..8)) {
            prop_assume!(x != 99);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u64..10).prop_map(|x| x as i64),
            (100u64..110).prop_map(|x| -(x as i64)),
        ]) {
            prop_assert!((0i64..10).contains(&v) || (-109i64..=-100).contains(&v));
        }
    }
}
