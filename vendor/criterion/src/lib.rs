//! A minimal, dependency-free stand-in for the `criterion` crate. The build
//! environment has no access to crates.io, so the workspace vendors the
//! surface its benches use: `Criterion::benchmark_group`, `bench_function`,
//! `iter`/`iter_batched`, `Throughput` and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple wall-clock mean; there is no
//! statistical analysis.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Hide a value from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement types (only wall time exists in this shim).
pub mod measurement {
    /// Wall-clock measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// How many operations or bytes one iteration represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (advisory in this shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            throughput: None,
            _criterion: PhantomData,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup::<'_, measurement::WallTime> {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            throughput: None,
            _criterion: PhantomData,
        };
        group.bench_function(name, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a, M> {
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: PhantomData<&'a M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Advisory sample count (ignored; kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// How long to measure each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// How long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Report throughput alongside time per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters.max(1) as u32
        };
        let mut line = format!(
            "  {name}: {:>12.1} ns/iter ({} iters)",
            per_iter.as_nanos() as f64,
            bencher.iters
        );
        if let Some(t) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match t {
                    Throughput::Elements(n) => {
                        line.push_str(&format!(", {:.0} elem/s", n as f64 / secs));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(", {:.1} MB/s", n as f64 / secs / 1e6));
                    }
                }
            }
        }
        println!("{line}");
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to drive timed iterations.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        // Measurement.
        let start = Instant::now();
        let deadline = start + self.measurement_time;
        let mut iters = 0u64;
        while Instant::now() < deadline {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < self.measurement_time {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = measured;
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iters() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("shim");
        group
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
