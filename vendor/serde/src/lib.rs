//! A minimal stand-in for `serde`: the derive macros expand to nothing and
//! the traits carry no methods. The workspace tags types with
//! `#[derive(Serialize, Deserialize)]` for forward compatibility but does not
//! serialize anything yet; swapping in the real `serde` later requires no
//! source changes.

pub use serde_derive::{Deserialize, Serialize};
