//! A minimal, dependency-free stand-in for the `rand` crate. The build
//! environment has no access to crates.io, so the workspace vendors the
//! surface it uses: a seedable `StdRng` (xoshiro256++), the `Rng` extension
//! trait (`gen`, `gen_range`, `gen_bool`) and `SliceRandom::shuffle`.

/// The low-level generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A biased coin flip: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy (here: the system clock).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 to spread the seed across the state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Create a generator seeded from the clock.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffle the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_well_spread() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut seen = xs.clone();
        seen.dedup();
        assert_eq!(seen.len(), xs.len(), "consecutive outputs should differ");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "gen_bool(0.5) badly biased: {trues}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
